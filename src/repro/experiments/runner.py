"""The experiment runner: execute specs, cache results on disk.

One :class:`ExperimentResult` per spec.  Results are cached as JSON files
keyed by ``ExperimentSpec.spec_hash()`` (the hash covers everything that
affects the numbers), so re-running a benchmark sweep or a CLI suite
recomputes only what changed.  The cache is a plain directory of
self-describing JSON files — inspectable, diffable, and safe to delete
wholesale.  Every entry carries :data:`RESULT_SCHEMA_VERSION`; loading an
entry written under another schema raises
:class:`~repro.errors.ExperimentError` (the runner warns with
:class:`~repro.errors.StaleCacheWarning` and recomputes instead of reusing
stale numbers).

Execution goes through the sharded parallel backend (:mod:`repro.parallel`)
along both axes the backend offers: a suite fans its specs out to the
executor, and each spec's replications split into independent
``SeedSequence``-seeded shards.  The default executor is serial — same
shards, same merge order, same numbers — so ``executor="process",
workers=N`` changes wall-clock only, never results.  In-flight shard
partials are themselves cached (``<cache>/shards/``), so an interrupted
sweep resumes from the shards it already finished; partials carry the same
:data:`RESULT_SCHEMA_VERSION` as top-level entries, and a version mismatch
warns (:class:`~repro.errors.StaleCacheWarning`) and recomputes instead of
resuming from stale numbers.

``docs/architecture.md`` documents how the runner, the registries, the
simulation engines, and the parallel backend fit together.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..errors import ExperimentError, StaleCacheWarning
from ..parallel.estimate import merged_estimate
from ..parallel.executor import Executor, get_executor
from ..parallel.merge import PartialEstimate
from ..parallel.sharding import Shard, make_shard_plan
from ..parallel.worker import ShardOutcome, SpecTask, run_spec_task, spec_payload
from .spec import ExperimentSpec

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "run_suite",
    "DEFAULT_CACHE_DIR",
    "RESULT_SCHEMA_VERSION",
]

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".repro_cache") / "experiments"

#: Schema of cached ``ExperimentResult`` JSON.  Bump when the result shape
#: or the meaning of a recorded field changes; mismatched entries are
#: rejected loudly instead of silently reinterpreted.
#: v2: sharded estimation (elapsed_s became aggregate worker seconds) and
#: the explicit version field itself.
RESULT_SCHEMA_VERSION = 2


def _jsonable(v):
    """Best-effort conversion of certificate/meta values to JSON types."""
    if isinstance(v, (bool, int, float, str)) or v is None:
        return v
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    if isinstance(v, np.ndarray):
        return v.tolist()
    if isinstance(v, dict):
        return {str(k): _jsonable(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    return repr(v)


@dataclass
class ExperimentResult:
    """Measured outcome of one spec (plus provenance for the cache).

    ``elapsed_s`` is the aggregate compute time summed over the spec's
    shard and reference tasks — under a process executor this exceeds the
    wall-clock share the spec actually occupied.
    """

    spec: ExperimentSpec
    algorithm: str
    mean: float
    std_err: float
    min: float
    max: float
    truncated: int
    reference: float | None = None
    reference_kind: str | None = None
    ratio: float | None = None
    engine_used: str = "auto"
    certificates: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    cache_hit: bool = False

    @property
    def ci95(self) -> tuple[float, float]:
        half = 1.96 * self.std_err
        return (self.mean - half, self.mean + half)

    def to_dict(self) -> dict:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.spec_hash(),
            "algorithm": self.algorithm,
            "mean": self.mean,
            "std_err": self.std_err,
            "min": self.min,
            "max": self.max,
            "truncated": self.truncated,
            "reference": self.reference,
            "reference_kind": self.reference_kind,
            "ratio": self.ratio,
            "engine_used": self.engine_used,
            "certificates": self.certificates,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: dict, cache_hit: bool = False) -> "ExperimentResult":
        version = data.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise ExperimentError(
                f"cached experiment result has schema_version={version!r}, this "
                f"runner writes {RESULT_SCHEMA_VERSION}; the entry predates a "
                "schema change and must be recomputed, not reinterpreted"
            )
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            algorithm=data["algorithm"],
            mean=data["mean"],
            std_err=data["std_err"],
            min=data["min"],
            max=data["max"],
            truncated=data["truncated"],
            reference=data.get("reference"),
            reference_kind=data.get("reference_kind"),
            ratio=data.get("ratio"),
            engine_used=data.get("engine_used", "auto"),
            certificates=data.get("certificates", {}),
            elapsed_s=data.get("elapsed_s", 0.0),
            cache_hit=cache_hit,
        )


# ----------------------------------------------------------------------
# Cache paths and loading
# ----------------------------------------------------------------------
def _cache_path(cache_dir: Path, spec: ExperimentSpec) -> Path:
    # Keyed on the hash alone so renaming a spec (name is excluded from the
    # hash) still finds its cached result; the name lives inside the JSON.
    return cache_dir / f"{spec.spec_hash()}.json"


def _shard_dir(cache_dir: Path) -> Path:
    return cache_dir / "shards"


def _shard_cache_path(cache_dir: Path, spec_hash: str, shard: Shard) -> Path:
    return _shard_dir(cache_dir) / (
        f"{spec_hash}.s{shard.index:03d}of{shard.n_shards:03d}.json"
    )


def _reference_cache_path(cache_dir: Path, spec_hash: str) -> Path:
    return _shard_dir(cache_dir) / f"{spec_hash}.ref.json"


def _load_cached_result(path: Path) -> ExperimentResult | None:
    """Read a spec-level cache entry; None on miss, corruption, or staleness.

    A schema-version mismatch warns (:class:`StaleCacheWarning`) so stale
    entries are never silently reused *and* never silently dropped; plain
    corruption stays a quiet miss as before.
    """
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None  # corrupt entry: recompute and rewrite
    try:
        return ExperimentResult.from_dict(data, cache_hit=True)
    except ExperimentError as exc:
        warnings.warn(
            StaleCacheWarning(f"discarding stale cache entry {path.name}: {exc}"),
            stacklevel=4,
        )
        return None
    except (KeyError, TypeError):
        return None


def _stale_partial(path: Path, data: object, kind: str) -> bool:
    """True (with a :class:`StaleCacheWarning`) for version-mismatched partials.

    Shard and reference partials carry the same ``schema_version`` as
    top-level results; resuming an interrupted sweep from partials written
    under another schema would silently mix incompatible numbers into the
    merge, so a mismatch is rejected as loudly as a stale spec-level entry.
    """
    version = data.get("schema_version") if isinstance(data, dict) else None
    if version == RESULT_SCHEMA_VERSION:
        return False
    warnings.warn(
        StaleCacheWarning(
            f"discarding stale {kind} {path.name}: written under "
            f"schema_version={version!r}, this runner writes "
            f"{RESULT_SCHEMA_VERSION}; recomputing instead of resuming"
        ),
        stacklevel=5,
    )
    return True


def _load_cached_shard(path: Path, spec_hash: str, shard: Shard) -> dict | None:
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None  # corrupt entry: a quiet miss, recomputed and rewritten
    if _stale_partial(path, data, "shard partial"):
        return None
    try:
        if (
            data.get("spec_hash") != spec_hash
            or data.get("shard_index") != shard.index
            or data.get("n_shards") != shard.n_shards
            or not isinstance(data["engine_used"], str)
            or not isinstance(data["elapsed_s"], (int, float))
        ):
            return None
        partial = PartialEstimate.from_dict(data["partial"])
        if partial.count != shard.reps:
            return None  # written under a different shard plan: recompute
        data["partial"] = partial
        return data
    except (KeyError, TypeError, ValueError):
        return None


def _load_cached_reference(path: Path, spec_hash: str) -> dict | None:
    """Read a cached reference solve; None on miss, staleness, or defect.

    Validates every field the suite loop later reads, mirroring
    :func:`_load_cached_shard` — corrupt entries are quiet misses, while a
    ``schema_version`` mismatch warns with :class:`StaleCacheWarning`.
    """
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if _stale_partial(path, data, "reference solve"):
        return None
    try:
        if (
            data.get("spec_hash") != spec_hash
            or not isinstance(data["reference"], (int, float))
            or not isinstance(data["reference_kind"], str)
            or not isinstance(data["elapsed_s"], (int, float))
        ):
            return None
        return data
    except (KeyError, TypeError):
        return None


# ----------------------------------------------------------------------
# Suite execution
# ----------------------------------------------------------------------
@dataclass
class _PendingSpec:
    """Bookkeeping for one cache-missed spec while its tasks are in flight.

    ``plan`` is None for exact-mode specs (``evaluation: {"mode":
    "exact"}``), whose whole shard plan is replaced by one front-door
    evaluation task.
    """

    spec: ExperimentSpec
    spec_hash: str
    plan: object | None
    need_reference: bool
    shard_outcomes: dict[int, ShardOutcome] = field(default_factory=dict)
    algorithm: str | None = None
    certificates: dict = field(default_factory=dict)
    reference: float | None = None
    reference_kind: str | None = None
    have_reference: bool = False
    exact_value: float | None = None
    engine_used: str | None = None
    have_exact: bool = False
    elapsed_s: float = 0.0
    #: Worker telemetry snapshots for the non-shard tasks (shard snapshots
    #: ride inside each ShardOutcome); grafted in a fixed order at
    #: assembly time, not completion order.
    exact_telemetry: dict | None = None
    reference_telemetry: dict | None = None

    def complete(self) -> bool:
        if self.plan is None:
            done = self.have_exact
        else:
            done = len(self.shard_outcomes) == self.plan.n_shards
        return done and (self.have_reference or not self.need_reference)


def _assemble(pend: _PendingSpec) -> ExperimentResult:
    spec = pend.spec
    # Graft order within a spec is fixed (exact, shards by index, then
    # reference) regardless of task completion order, so a traced suite's
    # per-spec subtrees are reproducible; counters are order-independent
    # sums either way.
    obs.graft_snapshot(pend.exact_telemetry)
    if pend.plan is None:
        assert pend.exact_value is not None
        mean, std_err = pend.exact_value, 0.0
        lo = hi = pend.exact_value
        truncated = 0
        engine_used = pend.engine_used or "markov-sparse"
    else:
        est = merged_estimate(
            sorted(pend.shard_outcomes.values(), key=lambda o: o.shard_index),
            reps=spec.reps,
            max_steps=spec.max_steps,
            keep_samples=False,
            require_finished=False,
        )
        mean, std_err = est.mean, est.std_err
        lo, hi = est.min, est.max
        truncated = est.truncated
        engine_used = est.engine_used
    obs.graft_snapshot(pend.reference_telemetry)
    ratio = None
    if pend.need_reference and pend.reference is not None:
        ratio = mean / max(pend.reference, 1e-12)
    return ExperimentResult(
        spec=spec,
        algorithm=pend.algorithm or spec.algorithm,
        mean=mean,
        std_err=std_err,
        min=lo,
        max=hi,
        truncated=truncated,
        reference=pend.reference,
        reference_kind=pend.reference_kind,
        ratio=ratio,
        engine_used=engine_used,
        certificates=pend.certificates,
        elapsed_s=pend.elapsed_s,
        cache_hit=False,
    )


def run_suite(
    specs: Sequence[ExperimentSpec],
    cache_dir: Path | str | None = DEFAULT_CACHE_DIR,
    force: bool = False,
    progress: Callable[[ExperimentSpec, ExperimentResult], None] | None = None,
    executor: "str | Executor | None" = None,
    workers: int | None = None,
) -> list[ExperimentResult]:
    """Run every spec, returning one result per spec in input order.

    Cache-missed specs are decomposed into replication-shard and reference
    tasks and fanned out to ``executor`` (default serial;
    ``executor="process", workers=N`` or just ``workers=N`` for a worker
    pool).  Task payloads are spec JSON — workers rebuild instances and
    schedules from the registries — so every spec parallelizes, including
    closure-based adaptive policies.  Results are identical for every
    executor and worker count: the shard plan and merge order depend only
    on each spec's ``reps`` and ``sim_seed``.

    ``progress`` (if given) is called once per spec as it completes —
    completion order under a process pool, input order otherwise.
    """
    cache = Path(cache_dir) if cache_dir is not None else None
    exe = get_executor(executor, workers)
    owns_executor = not isinstance(executor, Executor)
    results: list[ExperimentResult | None] = [None] * len(specs)
    pending: dict[int, _PendingSpec] = {}
    tasks: list[SpecTask] = []

    def finish(idx: int, result: ExperimentResult) -> None:
        results[idx] = result
        if progress is not None:
            progress(specs[idx], result)

    def store(idx: int, result: ExperimentResult) -> None:
        pend = pending[idx]
        if cache is not None:
            path = _cache_path(cache, specs[idx])
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(result.to_dict(), indent=2))
            # The spec-level entry supersedes its in-flight partials.
            for shard in pend.plan.shards if pend.plan is not None else ():
                _shard_cache_path(cache, pend.spec_hash, shard).unlink(missing_ok=True)
            _reference_cache_path(cache, pend.spec_hash).unlink(missing_ok=True)
        finish(idx, result)

    trace = obs.enabled()
    for idx, spec in enumerate(specs):
        if cache is not None and not force:
            hit = _load_cached_result(_cache_path(cache, spec))
            if hit is not None:
                obs.add("experiments.cache.hits")
                finish(idx, hit)
                continue
            obs.add("experiments.cache.misses")
        exact_mode = spec.evaluation_mode == "exact"
        pend = _PendingSpec(
            spec=spec,
            spec_hash=spec.spec_hash(),
            plan=None if exact_mode else make_shard_plan(spec.reps, spec.sim_seed),
            need_reference=spec.compute_reference,
        )
        pending[idx] = pend
        payload = spec_payload(spec)
        if exact_mode:
            # One front-door evaluation replaces the whole shard plan; it
            # is cheap and deterministic, so it has no partial cache.
            tasks.append(
                SpecTask(
                    spec_index=idx, spec_json=payload, kind="exact", trace=trace
                )
            )
        for shard in pend.plan.shards if pend.plan is not None else ():
            cached = None
            if cache is not None and not force:
                cached = _load_cached_shard(
                    _shard_cache_path(cache, pend.spec_hash, shard),
                    pend.spec_hash,
                    shard,
                )
                obs.add(
                    "experiments.shard_cache.hits"
                    if cached is not None
                    else "experiments.shard_cache.misses"
                )
            if cached is not None:
                pend.shard_outcomes[shard.index] = ShardOutcome(
                    shard_index=shard.index,
                    partial=cached["partial"],
                    engine_used=cached["engine_used"],
                    elapsed_s=cached["elapsed_s"],
                )
                pend.elapsed_s += cached["elapsed_s"]
                pend.algorithm = pend.algorithm or cached.get("algorithm")
                if cached.get("certificates") is not None:
                    pend.certificates = cached["certificates"]
            else:
                tasks.append(
                    SpecTask(
                        spec_index=idx,
                        spec_json=payload,
                        kind="shard",
                        shard=shard,
                        trace=trace,
                    )
                )
        if pend.need_reference:
            cached_ref = None
            if cache is not None and not force:
                cached_ref = _load_cached_reference(
                    _reference_cache_path(cache, pend.spec_hash), pend.spec_hash
                )
            if cached_ref is not None:
                pend.reference = cached_ref["reference"]
                pend.reference_kind = cached_ref["reference_kind"]
                pend.have_reference = True
                pend.elapsed_s += cached_ref["elapsed_s"]
            else:
                tasks.append(
                    SpecTask(
                        spec_index=idx,
                        spec_json=payload,
                        kind="reference",
                        trace=trace,
                    )
                )
        if pend.complete():
            # Every piece came from the shard cache (an interrupted run
            # that had finished computing but not merging).
            store(idx, _assemble(pend))
            del pending[idx]

    def on_task_done(_task_idx: int, outcome) -> None:
        idx = outcome.spec_index
        pend = pending[idx]
        pend.elapsed_s += outcome.elapsed_s
        if outcome.kind == "exact":
            pend.exact_value = outcome.exact_value
            pend.engine_used = outcome.engine_used
            pend.exact_telemetry = outcome.telemetry
            pend.have_exact = True
            pend.algorithm = pend.algorithm or outcome.algorithm
            if outcome.certificates is not None:
                pend.certificates = outcome.certificates
        elif outcome.kind == "shard":
            pend.shard_outcomes[outcome.shard.shard_index] = outcome.shard
            pend.algorithm = pend.algorithm or outcome.algorithm
            if outcome.certificates is not None:
                pend.certificates = outcome.certificates
            if cache is not None:
                shard = pend.plan.shards[outcome.shard.shard_index]
                path = _shard_cache_path(cache, pend.spec_hash, shard)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(
                    json.dumps(
                        {
                            "schema_version": RESULT_SCHEMA_VERSION,
                            "spec_hash": pend.spec_hash,
                            "shard_index": shard.index,
                            "n_shards": shard.n_shards,
                            "partial": outcome.shard.partial.to_dict(),
                            "engine_used": outcome.shard.engine_used,
                            "algorithm": outcome.algorithm,
                            "certificates": outcome.certificates,
                            "elapsed_s": outcome.shard.elapsed_s,
                        },
                        indent=2,
                    )
                )
        else:
            pend.reference = outcome.reference
            pend.reference_kind = outcome.reference_kind
            pend.reference_telemetry = outcome.telemetry
            pend.have_reference = True
            if cache is not None:
                path = _reference_cache_path(cache, pend.spec_hash)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(
                    json.dumps(
                        {
                            "schema_version": RESULT_SCHEMA_VERSION,
                            "spec_hash": pend.spec_hash,
                            "reference": outcome.reference,
                            "reference_kind": outcome.reference_kind,
                            "elapsed_s": outcome.elapsed_s,
                        }
                    )
                )
        if pend.complete():
            store(idx, _assemble(pend))
            del pending[idx]

    try:
        if tasks:
            with obs.span(
                "experiments.map", tasks=len(tasks), executor=exe.name
            ):
                exe.map_tasks(run_spec_task, tasks, progress=on_task_done)
    finally:
        if owns_executor:
            exe.close()
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def run_experiment(
    spec: ExperimentSpec,
    cache_dir: Path | str | None = DEFAULT_CACHE_DIR,
    force: bool = False,
    executor: "str | Executor | None" = None,
    workers: int | None = None,
) -> ExperimentResult:
    """Execute one spec, consulting/updating the on-disk cache.

    ``cache_dir=None`` disables caching entirely; ``force=True`` recomputes
    and overwrites any cached entry.  Entries are files named
    ``<spec_hash>.json``; corrupt entries are treated as misses (and
    rewritten), schema-stale entries additionally warn with
    :class:`~repro.errors.StaleCacheWarning`.  ``workers=N`` fans the
    spec's replication shards out to a process pool.
    """
    (result,) = run_suite(
        [spec],
        cache_dir=cache_dir,
        force=force,
        executor=executor,
        workers=workers,
    )
    return result

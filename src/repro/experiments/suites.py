"""Built-in experiment suites.

A *suite* is a named, deterministic list of :class:`ExperimentSpec`s.  The
benchmark files under ``benchmarks/`` and the CLI subcommand
``python -m repro run-experiments`` share these definitions, so a sweep run
from either entry point hits the same result cache.

Register project-specific suites with :func:`register_suite` — together
with the generator/algorithm registries this is the extension point for
new scenario families (see ``docs/architecture.md``).
"""

from __future__ import annotations

from typing import Callable

from ..errors import ExperimentError
from .spec import ExperimentSpec

__all__ = ["SUITES", "register_suite", "get_suite", "suite_names"]

SUITES: dict[str, Callable[[], list[ExperimentSpec]]] = {}


def register_suite(name: str):
    """Decorator registering a zero-argument suite builder under ``name``."""

    def deco(fn):
        if name in SUITES:
            raise ExperimentError(f"suite {name!r} is already registered")
        SUITES[name] = fn
        return fn

    return deco


def get_suite(name: str) -> list[ExperimentSpec]:
    try:
        builder = SUITES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}"
        ) from None
    return builder()


def suite_names() -> list[str]:
    return sorted(SUITES)


# ----------------------------------------------------------------------
# Smoke: one spec per simulation engine, small enough for CI.
# ----------------------------------------------------------------------
@register_suite("smoke")
def _smoke() -> list[ExperimentSpec]:
    base = dict(
        generator="random",
        generator_params={"n": 8, "m": 3, "dag_kind": "independent"},
        instance_seed=7,
        reps=40,
        max_steps=50_000,
    )
    return [
        # batched engine (deterministic adaptive policy) + reference ratio
        ExperimentSpec(
            name="smoke-adaptive",
            algorithm="adaptive",
            compute_reference=True,
            exact_limit=0,
            **base,
        ),
        # oblivious lockstep engine
        ExperimentSpec(name="smoke-lp", algorithm="lp", **base),
        # scalar engine (randomized policy)
        ExperimentSpec(name="smoke-random-policy", algorithm="random_policy", **base),
        # exact Markov route: the evaluation block replaces the shard plan
        # with one front-door solve (engine provenance lands in the table)
        ExperimentSpec(
            name="smoke-exact",
            generator="random",
            generator_params={"n": 6, "m": 2, "dag_kind": "chains"},
            instance_seed=7,
            algorithm="serial",
            evaluation={"mode": "exact"},
            compute_reference=True,
            exact_limit=6,
        ),
    ]


# ----------------------------------------------------------------------
# A3: the adaptivity gap across failure regimes (bench_a3_adaptivity_gap).
# ----------------------------------------------------------------------
#: (regime name, p-range low, p-range high, instance seed)
A3_REGIMES: list[tuple[str, float, float, int]] = [
    ("reliable", 0.6, 0.95, 101),
    ("mixed", 0.2, 0.8, 102),
    ("flaky", 0.05, 0.3, 103),
    ("very_flaky", 0.02, 0.1, 104),
]

A3_ALGORITHMS = ("adaptive", "oblivious", "lp")


@register_suite("adaptivity_gap")
def _adaptivity_gap() -> list[ExperimentSpec]:
    specs = []
    for regime, lo, hi, seed in A3_REGIMES:
        for alg in A3_ALGORITHMS:
            specs.append(
                ExperimentSpec(
                    name=f"a3-{regime}-{alg}",
                    generator="random",
                    generator_params={
                        "n": 16,
                        "m": 6,
                        "dag_kind": "independent",
                        "prob_model": "uniform",
                        "lo": lo,
                        "hi": hi,
                    },
                    instance_seed=seed,
                    algorithm=alg,
                    reps=80,
                    max_steps=300_000,
                )
            )
    return specs


# ----------------------------------------------------------------------
# E5: SUU-I-ALG ratio growth in n (bench_e05_adaptive_ratio).
# ----------------------------------------------------------------------
E05_SIZES = (8, 16, 32, 64, 128)
E05_SEEDS = (0, 1, 2)


@register_suite("adaptive_ratio")
def _adaptive_ratio() -> list[ExperimentSpec]:
    specs = [
        ExperimentSpec(
            name=f"e05-n{n}-s{seed}",
            generator="random",
            generator_params={"n": n, "m": 6, "dag_kind": "independent"},
            instance_seed=1000 + seed,
            algorithm="adaptive",
            reps=80,
            max_steps=50_000,
            compute_reference=True,
            exact_limit=0,
        )
        for n in E05_SIZES
        for seed in E05_SEEDS
    ]
    for alg in ("adaptive", "round_robin"):
        specs.append(
            ExperimentSpec(
                name=f"e05-specialist-{alg}",
                generator="random",
                generator_params={
                    "n": 24,
                    "m": 6,
                    "dag_kind": "independent",
                    "prob_model": "specialist",
                },
                instance_seed=77,
                algorithm=alg,
                reps=100,
                max_steps=50_000,
                compute_reference=True,
                exact_limit=0,
            )
        )
    return specs


# ----------------------------------------------------------------------
# E6: SUU-I-OBL vs SUU-I-ALG ratio growth (bench_e06_oblivious_ratio).
# ----------------------------------------------------------------------
E06_SIZES = (8, 16, 32, 64)
E06_SEEDS = (0, 1, 2)


@register_suite("oblivious_ratio")
def _oblivious_ratio() -> list[ExperimentSpec]:
    specs = []
    for n in E06_SIZES:
        for seed in E06_SEEDS:
            common = dict(
                generator="random",
                generator_params={"n": n, "m": 5, "dag_kind": "independent"},
                instance_seed=2000 + seed,
                reps=100,
                compute_reference=True,
                exact_limit=0,
            )
            specs.append(
                ExperimentSpec(
                    name=f"e06-n{n}-s{seed}-oblivious",
                    algorithm="oblivious",
                    max_steps=100_000,
                    **common,
                )
            )
            specs.append(
                ExperimentSpec(
                    name=f"e06-n{n}-s{seed}-adaptive",
                    algorithm="adaptive",
                    max_steps=50_000,
                    **common,
                )
            )
    return specs


# ----------------------------------------------------------------------
# Families: scenario diversity across DAG shapes × probability models,
# comparing the DAG-general policies.  The diamond family and the
# heterogeneous speed-class model land here; the suite is sized for the
# parallel backend (reps large enough to shard).
# ----------------------------------------------------------------------
FAMILY_DAGS: list[tuple[str, dict]] = [
    ("independent", {}),
    ("chains", {"num_chains": 4}),
    ("diamond", {"width": 4}),
]

FAMILY_PROB_MODELS = ("uniform", "heterogeneous")

FAMILY_ALGORITHMS = ("msm_eligible", "greedy")


@register_suite("families")
def _families() -> list[ExperimentSpec]:
    specs = []
    for dag_kind, dag_params in FAMILY_DAGS:
        for prob_model in FAMILY_PROB_MODELS:
            for alg in FAMILY_ALGORITHMS:
                specs.append(
                    ExperimentSpec(
                        name=f"fam-{dag_kind}-{prob_model}-{alg}",
                        generator="random",
                        generator_params={
                            "n": 20,
                            "m": 6,
                            "dag_kind": dag_kind,
                            "prob_model": prob_model,
                            **dag_params,
                        },
                        instance_seed=3000 + len(specs),
                        algorithm=alg,
                        reps=200,
                        max_steps=100_000,
                        compute_reference=True,
                        exact_limit=0,
                    )
                )
    return specs


# ----------------------------------------------------------------------
# Portfolio: every capability-admitting registry solver head-to-head on
# the three scenario families (grid = out-forest, project = chains,
# greedy_trap = independent), sized tiny for the CI portfolio-smoke job.
# The member list is computed from the solver registry at build time, so
# a newly registered solver joins the sweep automatically.
# ----------------------------------------------------------------------
#: (suite label, generator name, generator params, instance seed)
PORTFOLIO_SCENARIOS: list[tuple[str, str, dict, int]] = [
    ("grid", "grid", {"num_workflows": 2, "stages": 2, "fanout": 2, "machines": 3}, 21),
    ("project", "project", {"workstreams": 2, "tasks_per_stream": 2, "workers": 3}, 22),
    ("greedy_trap", "greedy_trap", {"n": 6, "m": 3}, 23),
]


@register_suite("portfolio")
def _portfolio() -> list[ExperimentSpec]:
    import numpy as np

    from ..algorithms.registry import iter_solvers
    from .registry import resolve_generator

    specs = []
    for label, generator, params, seed in PORTFOLIO_SCENARIOS:
        instance = resolve_generator(generator)(np.random.default_rng(seed), **params)
        for solver in iter_solvers(instance):
            specs.append(
                ExperimentSpec(
                    name=f"portfolio-{label}-{solver.name}",
                    generator=generator,
                    generator_params=dict(params),
                    instance_seed=seed,
                    algorithm=solver.name,
                    reps=40,
                    max_steps=20_000,
                    compute_reference=True,
                    exact_limit=6,
                )
            )
    return specs


# ----------------------------------------------------------------------
# Scenarios: the two paper-motivated applications, end to end.
# ----------------------------------------------------------------------
@register_suite("scenarios")
def _scenarios() -> list[ExperimentSpec]:
    specs = []
    for scenario in ("grid", "project"):
        for alg in ("solve", "serial", "greedy"):
            specs.append(
                ExperimentSpec(
                    name=f"{scenario}-{alg}",
                    generator=scenario,
                    instance_seed=11,
                    algorithm=alg,
                    reps=100,
                    max_steps=200_000,
                    compute_reference=True,
                )
            )
    return specs

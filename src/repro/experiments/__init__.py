"""Declarative, cached experiments: spec × registry × runner × suites.

The unified experiment layer (see ``docs/architecture.md``):

* :class:`ExperimentSpec` — a JSON-serializable description of one
  measurement (instance generator × algorithm × estimator parameters);
* registries (:data:`GENERATORS`, :data:`ALGORITHMS`, :data:`SUITES`) —
  string-named extension points so specs stay pure data;
* :func:`run_experiment` / :func:`run_suite` — execution with on-disk
  result caching keyed by the spec hash;
* built-in suites shared by ``benchmarks/bench_*.py`` and the CLI
  (``python -m repro run-experiments``).
"""

from .registry import (
    ALGORITHMS,
    GENERATORS,
    register_algorithm,
    register_generator,
    resolve_algorithm,
    resolve_constants,
    resolve_generator,
)
from .runner import (
    DEFAULT_CACHE_DIR,
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    run_experiment,
    run_suite,
)
from .spec import SPEC_VERSION, ExperimentSpec
from .suites import SUITES, get_suite, register_suite, suite_names

__all__ = [
    "ALGORITHMS",
    "GENERATORS",
    "SUITES",
    "SPEC_VERSION",
    "RESULT_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ExperimentSpec",
    "ExperimentResult",
    "register_algorithm",
    "register_generator",
    "register_suite",
    "resolve_algorithm",
    "resolve_constants",
    "resolve_generator",
    "run_experiment",
    "run_suite",
    "get_suite",
    "suite_names",
]

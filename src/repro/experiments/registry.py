"""Name registries backing declarative experiment specs.

An :class:`~repro.experiments.spec.ExperimentSpec` names its instance
generator and algorithm as strings so that specs serialize, hash stably for
the on-disk result cache, and round-trip through JSON.  This module owns
the two registries and their built-in entries:

* **generators** — ``fn(rng, **params) -> SUUInstance``;
* **algorithms** — ``fn(instance, rng, **params) -> ScheduleResult``.

Both are open for extension (the scenario-diversity hook: new uncertainty
models or workload families register here and immediately work with the
runner, the CLI, and the cached benchmarks)::

    from repro.experiments import register_generator

    @register_generator("budgeted")
    def budgeted(rng, n=16, m=6, gamma=3):
        ...
"""

from __future__ import annotations

from typing import Callable

from ..algorithms import LEAN, PAPER, PRACTICAL, SUUConstants, solve
from ..algorithms.registry import SOLVERS, Solver
from ..core.instance import SUUInstance
from ..core.schedule import ScheduleResult
from ..errors import ExperimentError
from ..workloads import (
    diamond_dag,
    greedy_trap,
    grid_computing,
    probability_matrix,
    project_management,
    random_instance,
)

__all__ = [
    "GENERATORS",
    "ALGORITHMS",
    "register_generator",
    "register_algorithm",
    "resolve_generator",
    "resolve_algorithm",
    "resolve_constants",
]

GENERATORS: dict[str, Callable[..., SUUInstance]] = {}
ALGORITHMS: dict[str, Callable[..., ScheduleResult]] = {}

_CONSTANTS = {"paper": PAPER, "practical": PRACTICAL, "lean": LEAN}


def resolve_constants(value) -> SUUConstants:
    """Map a preset name (``paper``/``practical``/``lean``) to constants.

    Specs carry the preset *name* so they stay JSON-serializable; an
    :class:`SUUConstants` instance is passed through unchanged for direct
    (non-spec) callers.
    """
    if isinstance(value, SUUConstants):
        return value
    try:
        return _CONSTANTS[value]
    except KeyError:
        raise ExperimentError(
            f"unknown constants preset {value!r}; expected one of "
            f"{sorted(_CONSTANTS)}"
        ) from None


def register_generator(name: str):
    """Decorator registering ``fn(rng, **params) -> SUUInstance`` under ``name``."""

    def deco(fn):
        if name in GENERATORS:
            raise ExperimentError(f"generator {name!r} is already registered")
        GENERATORS[name] = fn
        return fn

    return deco


def register_algorithm(name: str):
    """Decorator registering ``fn(instance, rng, **params) -> ScheduleResult``."""

    def deco(fn):
        if name in ALGORITHMS:
            raise ExperimentError(f"algorithm {name!r} is already registered")
        ALGORITHMS[name] = fn
        return fn

    return deco


def resolve_generator(name: str) -> Callable[..., SUUInstance]:
    try:
        return GENERATORS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown generator {name!r}; registered: {sorted(GENERATORS)}"
        ) from None


def resolve_algorithm(name: str) -> Callable[..., ScheduleResult]:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown algorithm {name!r}; registered: {sorted(ALGORITHMS)}"
        ) from None


# ----------------------------------------------------------------------
# Built-in generators
# ----------------------------------------------------------------------
@register_generator("random")
def _gen_random(rng, n=16, m=6, dag_kind="independent", prob_model="uniform", **kw):
    return random_instance(n, m, dag_kind=dag_kind, prob_model=prob_model, rng=rng, **kw)


@register_generator("grid")
def _gen_grid(rng, **kw):
    return grid_computing(rng=rng, **kw)


@register_generator("project")
def _gen_project(rng, **kw):
    return project_management(rng=rng, **kw)


@register_generator("greedy_trap")
def _gen_greedy_trap(rng, n=12, m=4, **kw):
    # The trap family is deterministic by construction; rng is unused.
    return greedy_trap(n, m, **kw)


@register_generator("diamond")
def _gen_diamond(rng, n=16, m=6, width=3, jitter=False, prob_model="uniform", **kw):
    """Series-parallel fan-out/fan-in pipelines (``workloads.diamond_dag``)."""
    dag = diamond_dag(n, width=width, rng=rng, jitter=jitter)
    p = probability_matrix(m, n, model=prob_model, rng=rng, **kw)
    return SUUInstance(p, dag, name=f"diamond/{prob_model}(n={n},m={m},w={width})")


# ----------------------------------------------------------------------
# Built-in algorithms: re-exports of the solver-registry records.
#
# Every record in repro.algorithms.registry.SOLVERS is exposed under the
# *same name*, so an algorithm name means one thing everywhere (pipeline
# methods, specs, portfolio, fuzzer, CLI).  The adapter preserves the
# historical experiment-algorithm contract exactly — ``fn(instance, rng,
# **params)``, with a ``constants=`` preset keyword only for solvers that
# declare the need — so existing spec hashes are unchanged (names and
# params are all the hash sees; SPEC_VERSION stays at 3).
# ----------------------------------------------------------------------
@register_algorithm("solve")
def _alg_solve(instance, rng, constants="practical", method="auto", allow_fallback=False):
    """The auto-dispatching front door (strongest-applicable query)."""
    return solve(
        instance,
        constants=resolve_constants(constants),
        rng=rng,
        method=method,
        allow_fallback=allow_fallback,
    )


def _solver_adapter(solver: Solver) -> Callable[..., ScheduleResult]:
    """Wrap a registry record in the experiment-algorithm signature."""
    if solver.needs_constants:

        def run(instance, rng, constants="practical", **params):
            return solver.build(
                instance, constants=resolve_constants(constants), rng=rng, **params
            )

    else:

        def run(instance, rng, **params):
            return solver.build(instance, rng=rng, **params)

    run.__name__ = f"_alg_{solver.name}"
    run.__doc__ = f"{solver.guarantee} [{solver.paper}]"
    return run


for _name, _solver in sorted(SOLVERS.items()):
    register_algorithm(_name)(_solver_adapter(_solver))
del _name, _solver

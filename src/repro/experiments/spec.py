"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a pure-data description of one measurement:
*instance generator × algorithm × estimator parameters*, all named through
the registries in :mod:`repro.experiments.registry` so the spec is JSON
round-trippable.  The spec's canonical-JSON hash keys the on-disk result
cache — two specs that describe the same computation hash identically
regardless of field order or the human-facing ``name`` label.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.instance import SUUInstance
from ..core.schedule import ScheduleResult
from ..errors import ExperimentError
from .registry import resolve_algorithm, resolve_generator

__all__ = ["ExperimentSpec", "SPEC_VERSION", "EVALUATION_KEYS"]

#: Bump to invalidate every cached result when estimation semantics change.
#: v2: estimation runs through the sharded backend (repro.parallel) — shard
#: streams replaced the single sim_seed stream, changing every number.
#: v3: specs gained the declarative ``evaluation:`` block (the field enters
#: the canonical JSON, so every hash changes even though mc numbers do not).
SPEC_VERSION = 3

#: Keys the ``evaluation:`` block accepts.  ``mode`` selects the runner
#: route ("mc" — the sharded default — or "exact", one front-door call);
#: ``engine`` / ``max_states`` configure the exact route.  Adaptive
#: precision (rtol/budget) is deliberately unsupported here: the cached
#: runner pre-plans its replication shards, so open-ended rep counts would
#: break both the shard plan and the cache key — call
#: :func:`repro.evaluate.evaluate` directly for that.
EVALUATION_KEYS = ("mode", "engine", "max_states")


@dataclass
class ExperimentSpec:
    """One experiment: build an instance, schedule it, estimate the makespan.

    Attributes
    ----------
    name:
        Human-facing label (table rows, cache-file names).  Excluded from
        the cache hash: renaming an experiment does not invalidate its
        cached result.
    generator / generator_params / instance_seed:
        Registry key, keyword arguments, and RNG seed for the instance.
    algorithm / algorithm_params:
        Registry key and keyword arguments for the scheduling algorithm
        (e.g. ``{"constants": "paper"}``).
    reps / max_steps / sim_seed / engine:
        Monte Carlo estimator parameters for the sharded evaluation route
        (the within-shard engine routing of ``repro.sim.montecarlo``).
    evaluation:
        Declarative evaluation block (:data:`EVALUATION_KEYS`): pure data
        describing *how* to judge the schedule, resolved through the
        :mod:`repro.evaluate` front door.  ``{"mode": "exact"}`` replaces
        the spec's whole shard plan with one exact Markov solve
        (``engine``/``max_states`` inside the block tune it; the
        top-level ``engine`` must stay ``"auto"`` then, and
        ``reps``/``max_steps``/``sim_seed`` are ignored — an exact answer
        has no sampling parameters); the default ``mode="mc"`` keeps the
        sharded Monte Carlo route driven by the fields above.
    compute_reference / exact_limit:
        When true, also compute the ratio denominator via
        :func:`repro.analysis.reference_makespan` (exact DP below
        ``exact_limit`` jobs, certified lower bound above).
    """

    name: str
    generator: str = "random"
    generator_params: dict = field(default_factory=dict)
    instance_seed: int = 0
    algorithm: str = "solve"
    algorithm_params: dict = field(default_factory=dict)
    reps: int = 200
    max_steps: int = 200_000
    sim_seed: int = 0
    engine: str = "auto"
    evaluation: dict = field(default_factory=dict)
    compute_reference: bool = False
    exact_limit: int = 10

    def __post_init__(self):
        bad = sorted(set(self.evaluation) - set(EVALUATION_KEYS))
        if bad:
            raise ExperimentError(
                f"spec {self.name!r}: unknown evaluation keys {bad}; "
                f"supported: {sorted(EVALUATION_KEYS)} (adaptive precision "
                "is not available through the cached runner — call "
                "repro.evaluate.evaluate directly)"
            )
        mode = self.evaluation.get("mode", "mc")
        if mode not in ("mc", "exact"):
            raise ExperimentError(
                f"spec {self.name!r}: evaluation mode must be 'mc' or 'exact' "
                f"(the runner needs a deterministic shard plan, so 'auto' is "
                f"not allowed here), got {mode!r}"
            )
        # Validate the exact-route settings at construction time: a bad
        # spec must fail here, not mid-suite inside a worker process —
        # and under mode="mc" these keys would be silently inert (the mc
        # route reads the top-level `engine`), so they are rejected.
        if mode == "exact":
            if self.engine != "auto":
                # The mirror asymmetry of the inert-key check below: the
                # exact route reads evaluation["engine"], never the
                # top-level MC engine field.
                raise ExperimentError(
                    f"spec {self.name!r}: top-level engine={self.engine!r} is "
                    "inert under evaluation mode='exact'; set the exact "
                    "engine inside the evaluation block instead "
                    '(evaluation={"mode": "exact", "engine": ...})'
                )
            engine = self.evaluation.get("engine", "auto")
            if engine not in ("auto", "sparse", "scalar"):
                raise ExperimentError(
                    f"spec {self.name!r}: evaluation engine for mode='exact' "
                    f"must be 'auto', 'sparse' or 'scalar', got {engine!r}"
                )
            max_states = self.evaluation.get("max_states")
            if max_states is not None and (
                not isinstance(max_states, int) or max_states < 1
            ):
                raise ExperimentError(
                    f"spec {self.name!r}: evaluation max_states must be a "
                    f"positive int, got {max_states!r}"
                )
        else:
            inert = sorted(set(self.evaluation) - {"mode"})
            if inert:
                raise ExperimentError(
                    f"spec {self.name!r}: evaluation keys {inert} only apply "
                    "to mode='exact'; the mc route is configured by the "
                    "spec's top-level reps/max_steps/sim_seed/engine fields"
                )

    # -- evaluation routing ----------------------------------------------
    @property
    def evaluation_mode(self) -> str:
        """``"mc"`` (sharded Monte Carlo, the default) or ``"exact"``."""
        return self.evaluation.get("mode", "mc")

    def evaluation_request(self):
        """The spec's ``evaluation:`` block as a front-door request.

        Only meaningful for ``mode="exact"`` — the mc route is executed
        shard-by-shard by the runner itself, below the front door.
        """
        from ..evaluate import EvaluationRequest

        return EvaluationRequest(
            metrics=("makespan",),
            mode="exact",
            engine=self.evaluation.get("engine", "auto"),
            max_states=self.evaluation.get("max_states"),
        )

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return cls(**data)

    def spec_hash(self) -> str:
        """Stable 16-hex-digit digest of everything that affects the result.

        Salted with :data:`SPEC_VERSION` and the package version, so cached
        results are invalidated both when estimation semantics change and
        across releases.  Within one release, code edits to algorithms do
        NOT change the hash — benchmarks and CLI users must clear the cache
        (or pass ``force=True`` / set ``REPRO_BENCH_COLD=1``) to re-measure
        after changing algorithm code.
        """
        from .. import __version__
        from ..parallel.sharding import default_shard_count

        payload = self.to_dict()
        payload.pop("name")
        payload["__version__"] = SPEC_VERSION
        payload["__package_version__"] = __version__
        # The default shard plan fixes the RNG stream structure, so a
        # change to the sharding constants must invalidate cached results.
        payload["__shards__"] = default_shard_count(self.reps)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- execution -------------------------------------------------------
    def build_instance(self) -> SUUInstance:
        gen = resolve_generator(self.generator)
        rng = np.random.default_rng(self.instance_seed)
        instance = gen(rng, **self.generator_params)
        if not isinstance(instance, SUUInstance):
            raise ExperimentError(
                f"generator {self.generator!r} returned "
                f"{type(instance).__name__}, expected SUUInstance"
            )
        return instance

    def build_schedule(self, instance: SUUInstance) -> ScheduleResult:
        alg = resolve_algorithm(self.algorithm)
        # The solver gets its own deterministic stream, decoupled from the
        # simulation stream so reps/sim_seed changes never alter the
        # schedule under test.
        rng = np.random.default_rng((self.instance_seed, 0xA16))
        result = alg(instance, rng, **self.algorithm_params)
        if not isinstance(result, ScheduleResult):
            raise ExperimentError(
                f"algorithm {self.algorithm!r} returned "
                f"{type(result).__name__}, expected ScheduleResult"
            )
        return result

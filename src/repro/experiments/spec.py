"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a pure-data description of one measurement:
*instance generator × algorithm × estimator parameters*, all named through
the registries in :mod:`repro.experiments.registry` so the spec is JSON
round-trippable.  The spec's canonical-JSON hash keys the on-disk result
cache — two specs that describe the same computation hash identically
regardless of field order or the human-facing ``name`` label.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.instance import SUUInstance
from ..core.schedule import ScheduleResult
from ..errors import ExperimentError
from .registry import resolve_algorithm, resolve_generator

__all__ = ["ExperimentSpec", "SPEC_VERSION"]

#: Bump to invalidate every cached result when estimation semantics change.
#: v2: estimation runs through the sharded backend (repro.parallel) — shard
#: streams replaced the single sim_seed stream, changing every number.
SPEC_VERSION = 2


@dataclass
class ExperimentSpec:
    """One experiment: build an instance, schedule it, estimate the makespan.

    Attributes
    ----------
    name:
        Human-facing label (table rows, cache-file names).  Excluded from
        the cache hash: renaming an experiment does not invalidate its
        cached result.
    generator / generator_params / instance_seed:
        Registry key, keyword arguments, and RNG seed for the instance.
    algorithm / algorithm_params:
        Registry key and keyword arguments for the scheduling algorithm
        (e.g. ``{"constants": "paper"}``).
    reps / max_steps / sim_seed / engine:
        Monte Carlo estimator parameters, passed to
        :func:`repro.sim.estimate_makespan`.
    compute_reference / exact_limit:
        When true, also compute the ratio denominator via
        :func:`repro.analysis.reference_makespan` (exact DP below
        ``exact_limit`` jobs, certified lower bound above).
    """

    name: str
    generator: str = "random"
    generator_params: dict = field(default_factory=dict)
    instance_seed: int = 0
    algorithm: str = "solve"
    algorithm_params: dict = field(default_factory=dict)
    reps: int = 200
    max_steps: int = 200_000
    sim_seed: int = 0
    engine: str = "auto"
    compute_reference: bool = False
    exact_limit: int = 10

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return cls(**data)

    def spec_hash(self) -> str:
        """Stable 16-hex-digit digest of everything that affects the result.

        Salted with :data:`SPEC_VERSION` and the package version, so cached
        results are invalidated both when estimation semantics change and
        across releases.  Within one release, code edits to algorithms do
        NOT change the hash — benchmarks and CLI users must clear the cache
        (or pass ``force=True`` / set ``REPRO_BENCH_COLD=1``) to re-measure
        after changing algorithm code.
        """
        from .. import __version__
        from ..parallel.sharding import default_shard_count

        payload = self.to_dict()
        payload.pop("name")
        payload["__version__"] = SPEC_VERSION
        payload["__package_version__"] = __version__
        # The default shard plan fixes the RNG stream structure, so a
        # change to the sharding constants must invalidate cached results.
        payload["__shards__"] = default_shard_count(self.reps)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- execution -------------------------------------------------------
    def build_instance(self) -> SUUInstance:
        gen = resolve_generator(self.generator)
        rng = np.random.default_rng(self.instance_seed)
        instance = gen(rng, **self.generator_params)
        if not isinstance(instance, SUUInstance):
            raise ExperimentError(
                f"generator {self.generator!r} returned "
                f"{type(instance).__name__}, expected SUUInstance"
            )
        return instance

    def build_schedule(self, instance: SUUInstance) -> ScheduleResult:
        alg = resolve_algorithm(self.algorithm)
        # The solver gets its own deterministic stream, decoupled from the
        # simulation stream so reps/sim_seed changes never alter the
        # schedule under test.
        rng = np.random.default_rng((self.instance_seed, 0xA16))
        result = alg(instance, rng, **self.algorithm_params)
        if not isinstance(result, ScheduleResult):
            raise ExperimentError(
                f"algorithm {self.algorithm!r} returned "
                f"{type(result).__name__}, expected ScheduleResult"
            )
        return result

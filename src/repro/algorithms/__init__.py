"""The paper's algorithms: MSM greedy, SUU-I, chains, trees, forests.

Every solver is registered in the capability-typed registry
(:mod:`repro.algorithms.registry`); external code dispatches through
:func:`solve`, :func:`resolve_solver` / :func:`iter_solvers`, or the
:func:`run_portfolio` meta-runner rather than importing concrete solver
functions (``tools/check_solver_callsites.py`` enforces this for
first-party code).
"""

from .baselines import (
    all_baselines,
    exact_baseline,
    greedy_prob_policy,
    msm_eligible_policy,
    random_policy,
    round_robin_baseline,
    serial_baseline,
    state_round_robin_regimen,
)
from .chains import build_chain_bands, solve_chains
from .constants import LEAN, PAPER, PRACTICAL, SUUConstants
from .independent import suu_i_adaptive, suu_i_lp, suu_i_oblivious
from .layered import depth_layers, solve_layered
from .msm import MSMExtendedResult, msm_alg, msm_e_alg, msm_mass_of_assignment
from .online_greedy import greedy_assignment, online_greedy
from .pipeline import solve
from .portfolio import PortfolioEntry, PortfolioReport, run_portfolio
from .registry import (
    SOLVERS,
    Solver,
    describe_solvers,
    iter_solvers,
    register_solver,
    resolve_solver,
    solver_names,
)
from .replication import replicate_with_tail, serial_tail
from .trees import solve_forest, solve_tree

__all__ = [
    "LEAN",
    "PAPER",
    "PRACTICAL",
    "SUUConstants",
    "MSMExtendedResult",
    "msm_alg",
    "msm_e_alg",
    "msm_mass_of_assignment",
    "suu_i_adaptive",
    "suu_i_lp",
    "suu_i_oblivious",
    "depth_layers",
    "solve_layered",
    "build_chain_bands",
    "solve_chains",
    "solve_forest",
    "solve_tree",
    "solve",
    "Solver",
    "SOLVERS",
    "register_solver",
    "resolve_solver",
    "iter_solvers",
    "solver_names",
    "describe_solvers",
    "PortfolioEntry",
    "PortfolioReport",
    "run_portfolio",
    "online_greedy",
    "greedy_assignment",
    "replicate_with_tail",
    "serial_tail",
    "all_baselines",
    "exact_baseline",
    "state_round_robin_regimen",
    "greedy_prob_policy",
    "random_policy",
    "msm_eligible_policy",
    "round_robin_baseline",
    "serial_baseline",
]

"""The paper's algorithms: MSM greedy, SUU-I, chains, trees, forests."""

from .baselines import (
    all_baselines,
    exact_baseline,
    greedy_prob_policy,
    msm_eligible_policy,
    random_policy,
    round_robin_baseline,
    serial_baseline,
    state_round_robin_regimen,
)
from .chains import build_chain_bands, solve_chains
from .constants import LEAN, PAPER, PRACTICAL, SUUConstants
from .independent import suu_i_adaptive, suu_i_lp, suu_i_oblivious
from .layered import depth_layers, solve_layered
from .msm import MSMExtendedResult, msm_alg, msm_e_alg, msm_mass_of_assignment
from .pipeline import solve
from .replication import replicate_with_tail, serial_tail
from .trees import solve_forest, solve_tree

__all__ = [
    "LEAN",
    "PAPER",
    "PRACTICAL",
    "SUUConstants",
    "MSMExtendedResult",
    "msm_alg",
    "msm_e_alg",
    "msm_mass_of_assignment",
    "suu_i_adaptive",
    "suu_i_lp",
    "suu_i_oblivious",
    "depth_layers",
    "solve_layered",
    "build_chain_bands",
    "solve_chains",
    "solve_forest",
    "solve_tree",
    "solve",
    "replicate_with_tail",
    "serial_tail",
    "all_baselines",
    "exact_baseline",
    "state_round_robin_regimen",
    "greedy_prob_policy",
    "random_policy",
    "msm_eligible_policy",
    "round_robin_baseline",
    "serial_baseline",
]

"""General DAGs by antichain layering — an extension beyond the paper (§5).

The paper leaves general precedence DAGs open.  A simple provable extension
falls out of its own machinery: partition the jobs by longest-path depth
(``layer(j) = length of the longest directed path ending at j``).  Within a
layer there are no edges (an edge would increase depth), so each layer is
an *independent* SUU instance, solvable by the Theorem 4.5 LP schedule;
executing the layers in order respects every precedence constraint.

Guarantee: each layer's optimal expected makespan is at most ``T^OPT`` of
the full instance (a schedule for everything also finishes the layer), so
the concatenation is ``O(L · log n · log min(n, m))``-approximate, where
``L`` is the DAG depth.  For shallow-but-wide general DAGs — the common
shape in grid workloads — this is a useful bound; for deep DAGs it degrades
toward the trivial ``O(n)``, which is why the paper calls the general case
open.
"""

from __future__ import annotations

from .._util import as_rng
from ..core.instance import SUUInstance
from ..core.schedule import ObliviousSchedule, ScheduleResult
from .constants import PRACTICAL, SUUConstants
from .independent import suu_i_lp
from .replication import replicate_with_tail

__all__ = ["depth_layers", "solve_layered"]


def depth_layers(instance: SUUInstance) -> list[list[int]]:
    """Partition jobs into antichain layers by longest-path depth.

    ``layers[k]`` holds the jobs whose longest incoming path has ``k``
    edges; consecutive layers are ordered, within-layer jobs incomparable.
    """
    dag = instance.dag
    depth = [0] * instance.n
    for j in dag.topological_order():
        for s in dag.successors(j):
            depth[s] = max(depth[s], depth[j] + 1)
    layers: list[list[int]] = [[] for _ in range(max(depth, default=0) + 1)]
    for j, d in enumerate(depth):
        layers[d].append(j)
    return layers


def solve_layered(
    instance: SUUInstance,
    constants: SUUConstants = PRACTICAL,
    rng=None,
) -> ScheduleResult:
    """Layer-by-layer LP scheduling for arbitrary DAGs.

    Works on *any* DAG (including the classes the paper covers, where the
    specialized pipelines are tighter).  The finite core is the
    concatenation of each layer's replicated Theorem 4.5 core; the serial
    tail guarantees finite expected makespan.
    """
    rng = as_rng(rng)
    layers = depth_layers(instance)
    core = ObliviousSchedule.empty(instance.m)
    layer_certs: list[dict] = []
    for k, jobs in enumerate(layers):
        sub, old_to_new = instance.induced(jobs)
        result = suu_i_lp(sub, constants)
        new_to_old = {v: key for key, v in old_to_new.items()}
        layer_core = result.finite_core.relabel_jobs(new_to_old)
        sigma = constants.replication_sigma(len(jobs))
        core = core.concat(layer_core.replicate_steps(sigma))
        layer_certs.append(
            {
                "layer": k,
                "jobs": len(jobs),
                "core_length": result.finite_core.length,
                "min_mass": result.certificates["min_core_mass"],
            }
        )
    schedule = replicate_with_tail(core, instance, sigma=1)
    return ScheduleResult(
        schedule=schedule,
        algorithm="solve_layered",
        finite_core=core,
        certificates={
            "layers": len(layers),
            "per_layer": layer_certs,
            "core_length": core.length,
            "guarantee": "O(depth · log n · log min(n,m)) x TOPT (extension of Thm 4.5)",
        },
        meta={"constants": constants},
    )

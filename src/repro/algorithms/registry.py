"""The capability-typed solver registry — one seam for every algorithm.

Every scheduling algorithm in the repo is registered here exactly once as
a :class:`Solver` record: the callable plus its *declared capabilities* —
which :class:`~repro.core.dag.DagClass`\\ es it accepts, what kind of
schedule it emits, its approximation guarantee, whether it consumes
constants / randomness, and the paper it comes from.  Three consumers
query the seam instead of importing concrete solver functions:

* :func:`repro.algorithms.pipeline.solve` — the front door picks the
  strongest applicable record (``auto_rank``) for the instance's class;
* :mod:`repro.experiments.registry` — the experiment ``ALGORITHMS`` table
  is generated from these records, so a name means one thing everywhere;
* :func:`repro.algorithms.portfolio.run_portfolio` and the verify fuzzer
  — both enumerate :func:`iter_solvers`, so a newly registered solver is
  benchmarked and fuzzed automatically.

First-party imports of the concrete solver functions outside
``repro/algorithms/`` are banned by ``tools/check_solver_callsites.py``;
route through :func:`resolve_solver` / :func:`iter_solvers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.dag import DagClass
from ..core.instance import SUUInstance
from ..core.schedule import ScheduleResult
from ..errors import ExperimentError
from .baselines import (
    exact_baseline,
    greedy_prob_policy,
    msm_eligible_policy,
    random_policy,
    round_robin_baseline,
    serial_baseline,
    state_round_robin_regimen,
)
from .chains import solve_chains
from .constants import PRACTICAL, SUUConstants
from .independent import suu_i_adaptive, suu_i_lp, suu_i_oblivious
from .layered import solve_layered
from .online_greedy import online_greedy
from .trees import solve_forest, solve_tree

__all__ = [
    "Solver",
    "SOLVERS",
    "register_solver",
    "resolve_solver",
    "iter_solvers",
    "solver_names",
    "describe_solvers",
]

#: Every DAG class — for solvers that accept arbitrary precedence.
ALL_CLASSES = frozenset(DagClass)

#: The §4 nesting: each pipeline also accepts every *more special* class.
_FOREST_CLASSES = frozenset(
    {
        DagClass.INDEPENDENT,
        DagClass.CHAINS,
        DagClass.OUT_FOREST,
        DagClass.IN_FOREST,
        DagClass.MIXED_FOREST,
    }
)
_TREE_CLASSES = frozenset(
    {DagClass.INDEPENDENT, DagClass.CHAINS, DagClass.OUT_FOREST, DagClass.IN_FOREST}
)


@dataclass(frozen=True)
class Solver:
    """One algorithm plus its honestly declared capabilities.

    Attributes
    ----------
    name:
        Registry key — the single name used by ``pipeline.solve`` methods,
        experiment specs, the portfolio runner, the fuzzer, and the CLI.
    fn:
        The concrete solver, ``fn(instance, **kwargs) -> ScheduleResult``.
        :meth:`build` forwards ``constants=`` / ``rng=`` only when the
        record declares the need, so records wrap heterogeneous signatures
        without adapter shims.
    dag_classes:
        The precedence classes the solver *accepts* (validation inside the
        solver still governs; forcing a solver on an unsupported class
        raises its own :class:`~repro.errors.UnsupportedDagError`).
    adaptivity:
        ``"oblivious"`` (finite/cyclic table), ``"adaptive"`` (policy), or
        ``"regimen"`` (explicit per-state table).
    guarantee / paper:
        Human-facing provenance: the approximation guarantee and source.
    cost:
        ``"cheap"`` (combinatorial), ``"lp"`` (solves linear programs), or
        ``"exponential"`` (enumerates the 2^n state space).
    max_jobs / max_machines:
        Capability caps for :func:`iter_solvers` (exponential solvers only
        admit small instances).  ``None`` = unbounded.
    auto_rank:
        Priority in ``solve(method="auto")`` — the applicable solver with
        the *smallest* rank wins; ``None`` means never auto-picked.
    fallback:
        Auto-dispatch only uses this solver when ``allow_fallback=True``
        (the depth-layered general-DAG extension).
    """

    name: str
    fn: Callable[..., ScheduleResult]
    dag_classes: frozenset[DagClass]
    adaptivity: str
    guarantee: str
    paper: str = "Lin & Rajaraman, SPAA 2007"
    needs_constants: bool = False
    needs_rng: bool = False
    cost: str = "cheap"
    max_jobs: int | None = None
    max_machines: int | None = None
    auto_rank: int | None = None
    fallback: bool = False
    #: Extra keyword defaults recorded for provenance (e.g. state caps).
    defaults: dict = field(default_factory=dict)

    def supports(self, instance: SUUInstance) -> bool:
        """Do the declared capabilities admit this instance?"""
        if instance.classify() not in self.dag_classes:
            return False
        if self.max_jobs is not None and instance.n > self.max_jobs:
            return False
        if self.max_machines is not None and instance.m > self.max_machines:
            return False
        return True

    def build(
        self,
        instance: SUUInstance,
        constants: SUUConstants = PRACTICAL,
        rng=None,
        **params,
    ) -> ScheduleResult:
        """Run the solver, forwarding only the inputs it declares.

        Deliberately *not* capability-gated: forcing a solver on an
        unsupported instance must raise the solver's own error with its
        own wording (``solve(method=...)`` relies on this).
        """
        kwargs = dict(params)
        if self.needs_constants:
            kwargs["constants"] = constants
        if self.needs_rng:
            kwargs["rng"] = rng
        return self.fn(instance, **kwargs)


SOLVERS: dict[str, Solver] = {}


def register_solver(solver: Solver) -> Solver:
    """Register a record; rejects duplicate names (one name, one meaning)."""
    if solver.name in SOLVERS:
        raise ExperimentError(f"solver {solver.name!r} is already registered")
    if solver.adaptivity not in ("oblivious", "adaptive", "regimen"):
        raise ExperimentError(
            f"solver {solver.name!r}: adaptivity must be 'oblivious', "
            f"'adaptive' or 'regimen', got {solver.adaptivity!r}"
        )
    SOLVERS[solver.name] = solver
    return solver


def resolve_solver(name: str) -> Solver:
    try:
        return SOLVERS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown solver {name!r}; registered: {sorted(SOLVERS)}"
        ) from None


def iter_solvers(instance: SUUInstance) -> list[Solver]:
    """All registered solvers whose capabilities admit ``instance``.

    Sorted by name, so enumeration order is deterministic for the
    portfolio runner and the fuzzer.
    """
    return [s for _, s in sorted(SOLVERS.items()) if s.supports(instance)]


def solver_names() -> list[str]:
    return sorted(SOLVERS)


def describe_solvers() -> list[dict]:
    """One provenance row per solver (CLI table / generated docs).

    Sorted by name; ``dag_classes`` is rendered compactly ("any" when the
    solver accepts every class).
    """
    rows = []
    for name, s in sorted(SOLVERS.items()):
        if s.dag_classes == ALL_CLASSES:
            classes = "any"
        else:
            classes = ",".join(
                c.value for c in sorted(s.dag_classes, key=lambda c: c.value)
            )
        rows.append(
            {
                "name": name,
                "dag_classes": classes,
                "adaptivity": s.adaptivity,
                "cost": s.cost,
                "guarantee": s.guarantee,
                "paper": s.paper,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Built-in records.  auto_rank encodes the pipeline's strongest-applicable
# order: lp < chains < tree < forest < layered — exactly the historical
# if-chain on classify() (test-asserted bitwise-equivalent).
# ----------------------------------------------------------------------
register_solver(
    Solver(
        name="adaptive",
        fn=suu_i_adaptive,
        dag_classes=frozenset({DagClass.INDEPENDENT}),
        adaptivity="adaptive",
        guarantee="O(log n) x TOPT (Thm 3.3)",
    )
)
register_solver(
    Solver(
        name="oblivious",
        fn=suu_i_oblivious,
        dag_classes=frozenset({DagClass.INDEPENDENT}),
        adaptivity="oblivious",
        guarantee="O(log^2 n) x TOPT (Thm 3.6)",
        needs_constants=True,
    )
)
register_solver(
    Solver(
        name="lp",
        fn=suu_i_lp,
        dag_classes=frozenset({DagClass.INDEPENDENT}),
        adaptivity="oblivious",
        guarantee="O(log n log min(n,m)) x TOPT (Thm 4.5)",
        needs_constants=True,
        cost="lp",
        auto_rank=10,
    )
)
register_solver(
    Solver(
        name="chains",
        fn=solve_chains,
        dag_classes=frozenset({DagClass.INDEPENDENT, DagClass.CHAINS}),
        adaptivity="oblivious",
        guarantee="O(log m log n log(n+m)/loglog(n+m)) x TOPT (Thm 4.4)",
        needs_constants=True,
        needs_rng=True,
        cost="lp",
        auto_rank=20,
    )
)
register_solver(
    Solver(
        name="tree",
        fn=solve_tree,
        dag_classes=_TREE_CLASSES,
        adaptivity="oblivious",
        guarantee="O(log m log^2 n) x TOPT (Thm 4.8)",
        needs_constants=True,
        needs_rng=True,
        cost="lp",
        auto_rank=30,
    )
)
register_solver(
    Solver(
        name="forest",
        fn=solve_forest,
        dag_classes=_FOREST_CLASSES,
        adaptivity="oblivious",
        guarantee="O(log m log^2 n log(n+m)/loglog(n+m)) x TOPT (Thm 4.7)",
        needs_constants=True,
        needs_rng=True,
        cost="lp",
        auto_rank=40,
    )
)
register_solver(
    Solver(
        name="layered",
        fn=solve_layered,
        dag_classes=ALL_CLASSES,
        adaptivity="oblivious",
        guarantee="O(depth log n log min(n,m)) x TOPT (extension of Thm 4.5)",
        paper="Lin & Rajaraman, SPAA 2007 (§5 extension)",
        needs_constants=True,
        needs_rng=True,
        cost="lp",
        auto_rank=90,
        fallback=True,
    )
)
register_solver(
    Solver(
        name="serial",
        fn=serial_baseline,
        dag_classes=ALL_CLASSES,
        adaptivity="oblivious",
        guarantee="n x TOPT (trivially correct gang baseline)",
    )
)
register_solver(
    Solver(
        name="round_robin",
        fn=round_robin_baseline,
        dag_classes=ALL_CLASSES,
        adaptivity="oblivious",
        guarantee="none (structure-blind comparator)",
    )
)
register_solver(
    Solver(
        name="greedy",
        fn=greedy_prob_policy,
        dag_classes=ALL_CLASSES,
        adaptivity="adaptive",
        guarantee="none (Theta(m) worse than MSM on greedy traps)",
    )
)
register_solver(
    Solver(
        name="random_policy",
        fn=random_policy,
        dag_classes=ALL_CLASSES,
        adaptivity="adaptive",
        guarantee="none (weakest sensible comparator)",
    )
)
register_solver(
    Solver(
        name="msm_eligible",
        fn=msm_eligible_policy,
        dag_classes=ALL_CLASSES,
        adaptivity="adaptive",
        guarantee="heuristic (SUU-I-ALG restricted to eligible jobs)",
        paper="Lin & Rajaraman, SPAA 2007 (Fig. 2 extension)",
    )
)
register_solver(
    Solver(
        name="online_greedy",
        fn=online_greedy,
        dag_classes=ALL_CLASSES,
        adaptivity="adaptive",
        guarantee="(8+4*sqrt(2))-competitive for sum w_j C_j on unrelated "
        "machines; makespan heuristic here",
        paper="Gupta, Moseley, Uetz, Xie (arXiv:1703.01634)",
    )
)
register_solver(
    Solver(
        name="exact",
        fn=exact_baseline,
        dag_classes=ALL_CLASSES,
        adaptivity="regimen",
        guarantee="exact TOPT (Malewicz DP, small instances)",
        paper="Malewicz 2005 (via Lin & Rajaraman §2)",
        cost="exponential",
        max_jobs=8,
        max_machines=3,
        defaults={"max_states": 1 << 14},
    )
)
register_solver(
    Solver(
        name="state_round_robin",
        fn=state_round_robin_regimen,
        dag_classes=ALL_CLASSES,
        adaptivity="regimen",
        guarantee="none (exact-engine evaluation workload)",
        cost="exponential",
        max_jobs=16,
        defaults={"max_states": 1 << 20},
    )
)

"""Tunable constants of the paper's constructions.

The paper's analysis fixes specific constants (remove jobs at mass 1/96,
loop ``66 log n`` times, replicate ``σ = 16 log n`` times, ...).  Those
values make the *proofs* airtight but produce schedules that are orders of
magnitude longer than necessary in practice.  Both presets share the exact
algorithmic structure; only the constants differ:

* :data:`PAPER` — the constants exactly as printed, for fidelity runs and
  for the A1 ablation.
* :data:`PRACTICAL` — smaller constants with the same asymptotic shape,
  used by default in examples and benchmarks (A1 quantifies the gap).

Every constant is documented with the paper location it comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .._util import log2p

__all__ = ["SUUConstants", "PAPER", "PRACTICAL", "LEAN"]


@dataclass(frozen=True)
class SUUConstants:
    """Constant bundle threaded through the §3–4 constructions."""

    #: Algorithm 2 (SUU-I-OBL): jobs are removed from the working set once
    #: they accumulate this much mass in the current round (paper: 1/96).
    obl_mass_threshold: float = 1.0 / 96.0

    #: Algorithm 2: round limit factor — at most ``factor · log2 n`` calls
    #: to MSM-E-ALG before the guess ``t`` is doubled (paper: 66).
    obl_round_factor: float = 66.0

    #: §4.1 schedule replication: each step of the core schedule is
    #: replicated ``σ = factor · log2 n`` times (paper: 16).
    replication_factor: float = 16.0

    #: Mass target of the AccMass LPs (paper: 1/2).
    lp_target_mass: float = 0.5

    #: Low-job scale in the Theorem 4.1 rounding (paper: 32).
    rounding_low_scale: int = 32

    #: SSW congestion-bound constant α in ``α log(n+m)/log log(n+m)``.
    delay_alpha: float = 4.0

    #: Use derandomized (conditional-expectation) delays instead of the
    #: randomized retry loop.
    derandomize_delays: bool = False

    def replication_sigma(self, n: int) -> int:
        """The per-step replication count ``σ`` for an ``n``-job instance."""
        return max(1, int(math.ceil(self.replication_factor * log2p(n))))

    def obl_round_limit(self, n: int) -> int:
        """Round budget per guess of ``t`` in Algorithm 2."""
        return max(1, int(math.ceil(self.obl_round_factor * log2p(n))))

    def with_(self, **kwargs) -> "SUUConstants":
        """A copy with some fields replaced (ablation helper)."""
        return replace(self, **kwargs)


#: The constants exactly as printed in the paper.
PAPER = SUUConstants()

#: Same structure, practical magnitudes: schedules stay short enough to
#: simulate densely while every guarantee mechanism still operates.
PRACTICAL = SUUConstants(
    obl_mass_threshold=1.0 / 8.0,
    obl_round_factor=8.0,
    replication_factor=2.0,
    lp_target_mass=0.5,
    rounding_low_scale=4,
    delay_alpha=4.0,
    derandomize_delays=False,
)

#: Most aggressive constants that keep the mechanisms intact: used by the
#: crossover experiments to show where the oblivious pipelines overtake the
#: baselines once the constant factors stop dominating.
LEAN = SUUConstants(
    obl_mass_threshold=1.0 / 4.0,
    obl_round_factor=4.0,
    replication_factor=0.5,
    lp_target_mass=0.5,
    rounding_low_scale=2,
    delay_alpha=3.0,
    derandomize_delays=False,
)

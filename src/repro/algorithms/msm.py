"""MSM-ALG and MSM-E-ALG: greedy 1/3-approximations for MaxSumMass.

Problem **MaxSumMass** (§3.1): choose a one-step assignment
``f: M → J ∪ {⊥}`` maximizing ``Σ_j min(1, Σ_{i: f(i)=j} p_ij)``.  The
greedy MSM-ALG of Figure 2 processes the ``p_ij`` in non-increasing order
and assigns machine ``i`` to job ``j`` whenever ``i`` is still free and
job ``j``'s mass would stay at most 1 — a 1/3-approximation (Theorem 3.2;
the problem itself is NP-hard).

**MSM-E-ALG** (Algorithm 1) generalizes to oblivious schedules of length
``t``: each machine has capacity ``t``; the same greedy order fills
``x_ij = min(t_i, ⌊(1 − mass_j)/p_ij⌋)`` units at a time.  Its running time
is independent of ``t`` (each pair is processed once) and it keeps the 1/3
factor (Lemma 3.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.schedule import IDLE, ObliviousSchedule

__all__ = ["msm_alg", "MSMExtendedResult", "msm_e_alg"]


def _sorted_pairs(p: np.ndarray, jobs: np.ndarray) -> list[tuple[float, int, int]]:
    """Positive (p, i, j) triples over the given job subset, sorted.

    Non-increasing in probability; ties broken by (machine, job) index so
    the greedy is fully deterministic.
    """
    out: list[tuple[float, int, int]] = []
    for j in jobs:
        col = p[:, j]
        for i in np.flatnonzero(col > 0.0):
            out.append((float(col[i]), int(i), int(j)))
    out.sort(key=lambda rec: (-rec[0], rec[1], rec[2]))
    return out


def msm_alg(p: np.ndarray, jobs: np.ndarray | list[int] | None = None) -> np.ndarray:
    """MSM-ALG (Figure 2): a greedy 1/3-approximate MaxSumMass assignment.

    Parameters
    ----------
    p:
        The full ``(m, n)`` probability matrix.
    jobs:
        Subset of jobs to consider (default: all).  Machines are assigned
        only to jobs in this subset — this is how SUU-I-ALG restricts to
        the unfinished set each step.

    Returns the ``(m,)`` assignment array (entries: job id or ``IDLE``).
    """
    m, n = p.shape
    job_arr = np.arange(n) if jobs is None else np.asarray(sorted(jobs), dtype=np.int64)
    f = np.full(m, IDLE, dtype=np.int32)
    load = np.zeros(n, dtype=np.float64)
    for pij, i, j in _sorted_pairs(p, job_arr):
        if f[i] == IDLE and load[j] + pij <= 1.0 + 1e-12:
            f[i] = j
            load[j] += pij
    return f


@dataclass
class MSMExtendedResult:
    """Output of MSM-E-ALG: the unit matrix and the derived schedule.

    ``x[i, j]`` is the number of steps machine ``i`` spends on job ``j``;
    ``schedule`` lays the units out as an oblivious schedule of length
    ``t`` (machine columns filled job-by-job in job order, padded idle).
    ``mass`` is the per-job mass ``Σ_i p_ij x_ij`` (the objective counts it
    capped at 1).
    """

    x: np.ndarray
    t: int
    schedule: ObliviousSchedule | None
    mass: np.ndarray

    @property
    def total_capped_mass(self) -> float:
        return float(np.minimum(self.mass, 1.0).sum())


def msm_e_alg(
    p: np.ndarray,
    t: int,
    jobs: np.ndarray | list[int] | None = None,
    build_schedule: bool = True,
) -> MSMExtendedResult:
    """MSM-E-ALG (Algorithm 1): greedy MaxSumMass-Ext for length ``t``.

    Machine capacities start at ``t``; pairs are processed in the same
    greedy order as MSM-ALG, each taking as many units as the remaining
    capacity and the job's remaining mass budget allow:
    ``x_ij ← min(t_i, ⌊(1 − Σ_k x_kj p_kj)/p_ij⌋)``.

    The greedy itself runs in time independent of ``t`` (each pair is
    processed once — the paper's observation after Algorithm 1); only the
    *layout* of the resulting oblivious schedule is Θ(t·m).  Pass
    ``build_schedule=False`` to skip the layout and get ``schedule=None``
    (the unit matrix ``x`` fully determines it).
    """
    if t < 1:
        raise ValueError("schedule length t must be >= 1")
    m, n = p.shape
    job_arr = np.arange(n) if jobs is None else np.asarray(sorted(jobs), dtype=np.int64)
    x = np.zeros((m, n), dtype=np.int64)
    capacity = np.full(m, int(t), dtype=np.int64)
    mass = np.zeros(n, dtype=np.float64)
    for pij, i, j in _sorted_pairs(p, job_arr):
        if capacity[i] <= 0:
            continue
        budget = int(math.floor((1.0 - mass[j]) / pij + 1e-12))
        units = min(int(capacity[i]), budget)
        if units <= 0:
            continue
        x[i, j] = units
        capacity[i] -= units
        mass[j] += units * pij

    if not build_schedule:
        return MSMExtendedResult(x=x, t=int(t), schedule=None, mass=mass)
    # Lay out the units: machine i works through its assigned jobs in job
    # order, one unit per step (Algorithm 1's output spec).
    sequences: list[list[int]] = []
    for i in range(m):
        seq: list[int] = []
        for j in job_arr:
            seq.extend([int(j)] * int(x[i, j]))
        sequences.append(seq)
    schedule = ObliviousSchedule.from_machine_sequences(sequences, length=t)
    return MSMExtendedResult(x=x, t=int(t), schedule=schedule, mass=mass)


def msm_mass_of_assignment(p: np.ndarray, assignment: np.ndarray) -> float:
    """The MaxSumMass objective ``Σ_j min(1, Σ_{i→j} p_ij)`` of an assignment."""
    m, n = p.shape
    load = np.zeros(n, dtype=np.float64)
    for i in range(m):
        j = int(assignment[i])
        if j != IDLE:
            load[j] += p[i, j]
    return float(np.minimum(load, 1.0).sum())

"""Online greedy assignment for unrelated stochastic machines.

The first successor-literature entry in the solver registry: the greedy
list-assignment rule of Gupta, Moseley, Uetz and Xie, *"Greed Works —
Online Algorithms For Unrelated Machine Stochastic Scheduling"*
(arXiv:1703.01634).  Their setting is stochastic jobs arriving online on
unrelated machines, where assigning each arriving job to the machine that
(approximately) minimizes the increase in expected objective is
``(8 + 4√2)``-competitive for ``Σ w_j C_j``.

Mapped onto the SUU model (Def 2.1): job ``j`` on machine ``i`` behaves
like a geometric service time with mean ``1/p_ij``, so the greedy online
rule becomes *"assign each job, in topological arrival order, to the
machine minimizing (current expected load) + 1/p_ij"*.  The guarantee is
for the weighted-completion-time objective in their model; here the rule
is an (effective) makespan heuristic — the portfolio runner triangulates
it against the paper's pipelines, the baselines, and the certified lower
bounds rather than claiming a transferred bound.

Execution is a deterministic stationary :class:`AdaptivePolicy`:

* each machine works the first *eligible* unfinished job of its own
  assignment queue (queues are subsequences of one topological order);
* a machine whose queue offers no eligible work "helps": it takes the
  eligible job it completes with the highest probability (work
  conservation — no machine idles while it could contribute).

Livelock-freedom: let ``J`` be the topologically-first unfinished job.
``J`` is always eligible, every queued job before ``J`` on its owner's
queue is topologically earlier and hence finished, so ``J``'s owner works
``J`` (with ``p > 0`` by construction of the queues) every step until it
completes — the unfinished set strictly shrinks in finite expected time.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import SUUInstance
from ..core.schedule import IDLE, AdaptivePolicy, ScheduleResult

__all__ = ["online_greedy", "greedy_assignment"]


def greedy_assignment(instance: SUUInstance) -> list[list[int]]:
    """Phase 1: the Greed-Works machine queues.

    Jobs are "released" in topological order; each goes to the machine
    minimizing ``load_i + 1/p_ij`` over machines with ``p_ij > 0``, where
    ``load_i`` accumulates the expected (geometric) processing times of
    the jobs already queued on ``i``.  Ties break to the lowest machine
    id, so the assignment is deterministic.
    """
    p = instance.p
    loads = np.zeros(instance.m, dtype=np.float64)
    queues: list[list[int]] = [[] for _ in range(instance.m)]
    for j in instance.dag.topological_order():
        col = p[:, j]
        with np.errstate(divide="ignore"):
            expected = np.where(col > 0.0, 1.0 / np.maximum(col, 1e-300), np.inf)
        best = int(np.argmin(loads + expected))
        queues[best].append(int(j))
        loads[best] += float(expected[best])
    return queues


def online_greedy(instance: SUUInstance) -> ScheduleResult:
    """Greed-Works greedy assignment executed as a stationary policy."""
    queues = greedy_assignment(instance)
    p = instance.p
    topo_pos = {int(j): k for k, j in enumerate(instance.dag.topological_order())}

    def rule(inst, unfinished, eligible, t, rng):
        a = np.full(inst.m, IDLE, dtype=np.int32)
        if not eligible:
            return a
        elig = set(eligible)
        helper_jobs = np.asarray(sorted(elig), dtype=np.int64)
        for i in range(inst.m):
            own = next((j for j in queues[i] if j in unfinished and j in elig), None)
            if own is not None:
                a[i] = own
                continue
            # Work conservation: help the eligible job this machine is
            # best at (ties to the topologically earliest, then lowest id).
            probs = p[i, helper_jobs]
            if float(probs.max(initial=0.0)) <= 0.0:
                continue
            order = sorted(
                (int(j) for j, q in zip(helper_jobs, probs) if q == probs.max()),
                key=lambda j: (topo_pos[j], j),
            )
            a[i] = order[0]
        return a

    return ScheduleResult(
        schedule=AdaptivePolicy(
            rule, name="online-greedy", stationary=True, randomized=False
        ),
        algorithm="online_greedy",
        certificates={
            "guarantee": "(8+4*sqrt(2))-competitive for sum w_j C_j "
            "(Gupta et al., arXiv:1703.01634); makespan heuristic here",
            "queue_lengths": [len(q) for q in queues],
        },
    )

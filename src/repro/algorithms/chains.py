"""SUU-C: scheduling under disjoint-chain precedence constraints (§4.1).

The full Theorem 4.4 pipeline::

    (LP1) ──solve──► fractional (x, d, T*)            repro.lp.acc_mass
      │ round (Thm 4.1: ceil / buckets + integral flow)   repro.rounding
      ▼
    integral (x̂, d̂, t̂),  t̂ = O(log m)·T*
      │ lay out chain bands (windows ψ_j .. ψ_j+L_j)       build_chain_bands
      ▼
    pseudo-schedule Σ_s  (length & load O(log m)·T^OPT)
      │ random delays over [0, Π_max]  (SSW [27])          repro.delay
      ▼
    Σ_{s,1}: congestion O(log(n+m)/log log(n+m))
      │ flatten (expand steps by the congestion)           repro.delay.flatten
      ▼
    oblivious Σ_{o,1}
      │ replicate steps ×σ=O(log n), append serial tail    replication
      ▼
    Σ_o with E[makespan] = O(log m · log n · log(n+m)/log log(n+m)) · T^OPT

Every stage's invariant is checked and recorded in the result certificates.
"""

from __future__ import annotations


import numpy as np

from .._util import as_rng
from ..core.instance import SUUInstance
from ..core.schedule import (
    ChainBand,
    ChainBands,
    JobWindow,
    ScheduleResult,
)
from ..delay.derandomize import derandomized_delays
from ..delay.flatten import flatten_pseudo
from ..delay.random_delay import find_good_delays, ssw_collision_bound
from ..errors import RoundingError, UnsupportedDagError
from ..lp.acc_mass import FractionalAccMass, solve_lp1
from ..rounding.round_lp import IntegralAccMass, round_acc_mass
from .constants import PRACTICAL, SUUConstants
from .replication import replicate_with_tail

__all__ = ["build_chain_bands", "solve_chains"]


def build_chain_bands(
    instance: SUUInstance,
    integral: IntegralAccMass,
) -> ChainBands:
    """Lay the integral solution out as per-chain job windows (Thm 4.1 proof).

    Chain ``C_k = j_1 ≺ j_2 ≺ ...`` gets consecutive windows: job ``j``
    occupies steps ``ψ_j .. ψ_j + L_j − 1`` with ``L_j = max_i x̂_ij`` and
    ``ψ_j`` the sum of the window lengths of its chain predecessors;
    machine ``i`` works on ``j`` during the first ``x̂_ij`` steps of the
    window.  Jobs of *different* chains may share machine-steps — that is
    the pseudo-schedule slack removed later by delays.
    """
    bands: list[ChainBand] = []
    for k, chain in enumerate(integral.chains):
        windows: list[JobWindow] = []
        start = 0
        for j in chain:
            col = integral.x[:, j]
            length = int(col.max())
            if length <= 0:
                raise RoundingError(
                    f"job {j} received no machine units in the integral solution"
                )
            units = tuple(
                (int(i), int(col[i])) for i in np.flatnonzero(col > 0)
            )
            windows.append(
                JobWindow(job=int(j), start=start, length=length, machine_units=units)
            )
            start += length
        bands.append(ChainBand(chain_id=k, windows=tuple(windows)))
    return ChainBands(instance.m, bands)


def _apply_delays(
    bands: ChainBands,
    instance: SUUInstance,
    constants: SUUConstants,
    rng,
    window: int | None = None,
    target: int | None = None,
):
    """Dispatch to the randomized or derandomized delay step.

    The delay-candidate grid is coarsened to keep the number of candidate
    delays polynomial (the paper's "reducing T^OPT" §4.1 trick): with
    ``β = n·m`` candidate slots the union bound in the SSW argument stays
    intact while the search space stays small.
    """
    if window is None:
        window = bands.pi_max()
    beta = max(4, instance.n * instance.m)
    grid = max(1, window // beta)
    if constants.derandomize_delays:
        return derandomized_delays(
            bands,
            window=window,
            n_jobs=instance.n,
            alpha=constants.delay_alpha,
            grid=grid,
        )
    return find_good_delays(
        bands,
        window=window,
        target=target,
        rng=rng,
        alpha=constants.delay_alpha,
        n_jobs=instance.n,
        grid=grid,
    )


def solve_chains(
    instance: SUUInstance,
    constants: SUUConstants = PRACTICAL,
    rng=None,
    chains: list[list[int]] | None = None,
    delay_window: int | None = None,
    window_divisor: float | None = None,
    collision_target: int | None = None,
    frac: FractionalAccMass | None = None,
) -> ScheduleResult:
    """Theorem 4.4: oblivious schedule for disjoint-chain precedence.

    Parameters beyond the obvious:

    chains:
        Explicit chain partition (used by the tree/forest block scheduler,
        whose blocks carry their own chain structure); defaults to the
        instance DAG's chains.
    delay_window / window_divisor / collision_target:
        Overrides for the delay step; the tree algorithm (Thm 4.8) passes
        ``window_divisor = log n`` (window ``Π_max / log n``) and a
        congestion target of ``O(log n)``.
    frac:
        A pre-solved (LP1) solution, to share work across ablations.
    """
    rng = as_rng(rng)
    if chains is None:
        chains = instance.dag.chains()  # raises for non-chain DAGs
    elif instance.dag.num_edges == 0 and any(len(c) > 1 for c in chains):
        raise UnsupportedDagError(
            "explicit multi-job chains given for an instance without edges"
        )
    # 1. LP relaxation.
    if frac is None:
        frac = solve_lp1(instance, chains, target_mass=constants.lp_target_mass)
    # 2. Theorem 4.1 rounding.
    integral = round_acc_mass(
        instance, frac, low_scale=constants.rounding_low_scale
    )
    # 3. Pseudo-schedule bands.
    bands = build_chain_bands(instance, integral)
    pi_max = bands.pi_max()
    if delay_window is None and window_divisor is not None:
        delay_window = max(1, int(pi_max / max(1.0, window_divisor)))
    # 4. Random (or derandomized) delays.
    outcome = _apply_delays(
        bands, instance, constants, rng, window=delay_window, target=collision_target
    )
    # 5. Flatten into a feasible oblivious schedule.
    pseudo = outcome.bands.to_pseudo()
    core = flatten_pseudo(pseudo)
    # 6. Replicate and append the serial tail.
    sigma = constants.replication_sigma(instance.n)
    schedule = replicate_with_tail(core, instance, sigma)

    masses = core.masses(instance)
    cert = integral.certificate(instance)
    cert.update(
        {
            "lp_value": frac.t,
            "pi_max": pi_max,
            "delay_window": outcome.window,
            "delay_attempts": outcome.attempts,
            "max_collision": outcome.max_collision,
            "collision_target": outcome.target,
            "ssw_bound": ssw_collision_bound(
                instance.n, instance.m, alpha=constants.delay_alpha
            ),
            "core_length": core.length,
            "sigma": sigma,
            "min_core_mass": float(masses.min()) if masses.size else 0.0,
            "guarantee": "O(log m log n log(n+m)/loglog(n+m)) x TOPT (Thm 4.4)",
        }
    )
    return ScheduleResult(
        schedule=schedule,
        algorithm="solve_chains",
        finite_core=core,
        certificates=cert,
        meta={"constants": constants, "delays": outcome.delays},
    )

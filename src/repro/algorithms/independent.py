"""Scheduling independent jobs (SUU-I, §3 and Theorem 4.5).

Three algorithms, in increasing order of sophistication:

* :func:`suu_i_adaptive` — **SUU-I-ALG** (Figure 2): each step, run MSM-ALG
  on the currently unfinished jobs.  Adaptive; ``O(log n)``-approximate
  (Theorem 3.3).
* :func:`suu_i_oblivious` — **SUU-I-OBL** (Algorithm 2): guess the horizon
  ``t`` by doubling; per guess, repeatedly call MSM-E-ALG on the jobs still
  below the mass threshold, concatenating the produced blocks; infinitely
  repeating the result is ``O(log² n)``-approximate (Theorem 3.6).
* :func:`suu_i_lp` — the LP-based oblivious schedule of Theorem 4.5: solve
  (LP2), round (Theorem 4.1 / 4.5 variant), lay the integral units out
  per machine, replicate and add the serial tail;
  ``O(log n · log min(n, m))``-approximate.
"""

from __future__ import annotations

import math

from ..core.instance import SUUInstance
from ..core.schedule import (
    AdaptivePolicy,
    CyclicSchedule,
    ObliviousSchedule,
    ScheduleResult,
)
from ..errors import UnsupportedDagError
from ..lp.acc_mass import solve_lp2
from ..rounding.round_lp import round_acc_mass
from .constants import PRACTICAL, SUUConstants
from .msm import msm_alg, msm_e_alg
from .replication import replicate_with_tail

__all__ = ["suu_i_adaptive", "suu_i_oblivious", "suu_i_lp"]


def _require_independent(instance: SUUInstance, who: str) -> None:
    if instance.dag.num_edges:
        raise UnsupportedDagError(
            f"{who} requires independent jobs; DAG class is "
            f"{instance.classify().value}"
        )


# ----------------------------------------------------------------------
# SUU-I-ALG (adaptive, Theorem 3.3)
# ----------------------------------------------------------------------
def suu_i_adaptive(instance: SUUInstance) -> ScheduleResult:
    """SUU-I-ALG: per-step MSM-ALG on the unfinished set (Figure 2).

    The returned schedule is an :class:`AdaptivePolicy`; it is stateless
    and deterministic given the unfinished set, i.e. a regimen presented
    implicitly.
    """
    _require_independent(instance, "SUU-I-ALG")
    p = instance.p

    def rule(inst, unfinished, eligible, t, rng):
        return msm_alg(p, jobs=sorted(unfinished))

    policy = AdaptivePolicy(rule, name="suu-i-alg", stationary=True, randomized=False)
    return ScheduleResult(
        schedule=policy,
        algorithm="suu_i_adaptive",
        certificates={"guarantee": "O(log n) x TOPT (Thm 3.3)"},
    )


# ----------------------------------------------------------------------
# SUU-I-OBL (Algorithm 2, Theorem 3.6)
# ----------------------------------------------------------------------
def suu_i_oblivious(
    instance: SUUInstance,
    constants: SUUConstants = PRACTICAL,
) -> ScheduleResult:
    """SUU-I-OBL (Algorithm 2): combinatorial oblivious schedule.

    Doubles the guess ``t`` until every job accumulates the mass threshold
    within the round budget; the infinite repetition of the concatenated
    blocks is the schedule (Theorem 3.6: ``O(log² n)`` with the paper's
    constants).

    The doubling loop is guaranteed to terminate: for
    ``t >= n / p_min`` a single MSM-E-ALG call can give every job mass 1.
    """
    _require_independent(instance, "SUU-I-OBL")
    n, m = instance.n, instance.m
    p = instance.p
    threshold = constants.obl_mass_threshold
    round_limit = constants.obl_round_limit(n)

    t = 1
    # Hard terminator: at this horizon one call covers everything.
    t_ceiling = 2 * int(math.ceil(n / instance.p_min_positive)) + 2
    blocks: list[ObliviousSchedule] | None = None
    doublings = 0
    rounds_used = 0
    while True:
        remaining = list(range(n))
        candidate: list[ObliviousSchedule] = []
        rounds = 0
        while remaining and rounds < round_limit:
            res = msm_e_alg(p, t, jobs=remaining)
            candidate.append(res.schedule)
            rounds += 1
            remaining = [j for j in remaining if res.mass[j] < threshold - 1e-12]
        if not remaining:
            blocks = candidate
            rounds_used = rounds
            break
        if t > t_ceiling:  # pragma: no cover - the ceiling provably suffices
            raise RuntimeError("SUU-I-OBL failed to converge below the ceiling")
        t *= 2
        doublings += 1

    core = blocks[0]
    for b in blocks[1:]:
        core = core.concat(b)
    schedule = CyclicSchedule(ObliviousSchedule.empty(m), core)
    masses = core.masses(instance)
    return ScheduleResult(
        schedule=schedule,
        algorithm="suu_i_oblivious",
        finite_core=core,
        certificates={
            "min_mass": float(masses.min()),
            "mass_threshold": threshold,
            "core_length": core.length,
            "final_t": t,
            "rounds": rounds_used,
            "doublings": doublings,
            "guarantee": "O(log^2 n) x TOPT (Thm 3.6)",
        },
        meta={"constants": constants},
    )


# ----------------------------------------------------------------------
# LP-based oblivious schedule (Theorem 4.5)
# ----------------------------------------------------------------------
def suu_i_lp(
    instance: SUUInstance,
    constants: SUUConstants = PRACTICAL,
) -> ScheduleResult:
    """Theorem 4.5: LP2 + rounding + replication, oblivious.

    The rounded integral solution bounds every machine's load by ``t̂``, so
    laying each machine's units out sequentially produces a feasible
    oblivious schedule of length ``t̂`` in which every job has mass at
    least 1/2; per-step replication by ``σ = O(log n)`` plus the serial
    tail gives expected makespan ``O(log n · log min(n,m)) · T^OPT``.
    """
    _require_independent(instance, "Theorem 4.5 scheduler")
    frac = solve_lp2(instance, target_mass=constants.lp_target_mass)
    integral = round_acc_mass(
        instance, frac, independent=True, low_scale=constants.rounding_low_scale
    )
    # Each machine's units in job order; jobs are independent so any
    # within-machine order is valid.
    sequences: list[list[int]] = []
    for i in range(instance.m):
        seq: list[int] = []
        for j in range(instance.n):
            seq.extend([j] * int(integral.x[i, j]))
        sequences.append(seq)
    core = ObliviousSchedule.from_machine_sequences(sequences)
    sigma = constants.replication_sigma(instance.n)
    schedule = replicate_with_tail(core, instance, sigma)
    masses = core.masses(instance)
    cert = integral.certificate(instance)
    cert.update(
        {
            "min_core_mass": float(masses.min()),
            "core_length": core.length,
            "sigma": sigma,
            "lp_value": frac.t,
            "guarantee": "O(log n log min(n,m)) x TOPT (Thm 4.5)",
        }
    )
    return ScheduleResult(
        schedule=schedule,
        algorithm="suu_i_lp",
        finite_core=core,
        certificates=cert,
        meta={"constants": constants},
    )

"""Baseline schedulers the paper's algorithms are compared against.

The paper has no experimental section, so the natural comparators for the
experiment suite are:

* :func:`serial_baseline` — the trivially correct schedule ``Σ_{o,3}``
  alone: all machines gang up on one job at a time in topological order.
  Optimal for a single job, ``Θ(n)``-ly wasteful for wide instances.
* :func:`round_robin_baseline` — an oblivious cyclic spread of machines
  over jobs, ignoring both probabilities and structure.
* :func:`greedy_prob_policy` — adaptive: every machine picks the eligible
  unfinished job it completes with the highest probability (ties to the
  lowest job id).  A natural "local" heuristic with no cap on piling up.
* :func:`random_policy` — adaptive: machines pick uniformly random
  eligible jobs; the weakest sensible comparator.
* :func:`exact_baseline` — the Malewicz optimal regimen (small instances
  only), i.e. ``T^OPT`` itself.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import SUUInstance
from ..core.schedule import (
    IDLE,
    AdaptivePolicy,
    CyclicSchedule,
    ObliviousSchedule,
    Regimen,
    ScheduleResult,
)
from ..opt.malewicz import optimal_regimen
from .replication import serial_tail

__all__ = [
    "serial_baseline",
    "round_robin_baseline",
    "greedy_prob_policy",
    "random_policy",
    "msm_eligible_policy",
    "exact_baseline",
    "state_round_robin_regimen",
    "all_baselines",
]


def serial_baseline(instance: SUUInstance) -> ScheduleResult:
    """All machines on one job at a time, topological order, forever."""
    return ScheduleResult(
        schedule=CyclicSchedule(
            ObliviousSchedule.empty(instance.m), serial_tail(instance)
        ),
        algorithm="serial_baseline",
    )


def round_robin_baseline(instance: SUUInstance) -> ScheduleResult:
    """Oblivious round-robin: machine ``i`` cycles through jobs offset by ``i``.

    The cycle has length ``n`` so every (machine, job) pair appears once
    per period; precedence is ignored (the execution semantics idle
    machines on ineligible jobs).
    """
    n, m = instance.n, instance.m
    order = instance.dag.topological_order()
    table = np.empty((max(1, n), m), dtype=np.int32)
    if n == 0:
        table[:] = IDLE
    else:
        for t in range(n):
            for i in range(m):
                table[t, i] = order[(t + i) % n]
    return ScheduleResult(
        schedule=CyclicSchedule(ObliviousSchedule.empty(m), ObliviousSchedule(table)),
        algorithm="round_robin_baseline",
    )


def greedy_prob_policy(instance: SUUInstance) -> ScheduleResult:
    """Adaptive greedy: each machine takes its best eligible job."""
    p = instance.p

    def rule(inst, unfinished, eligible, t, rng):
        a = np.full(inst.m, IDLE, dtype=np.int32)
        if eligible:
            jobs = np.asarray(sorted(eligible), dtype=np.int64)
            sub = p[:, jobs]  # (m, k)
            best = np.argmax(sub, axis=1)
            for i in range(inst.m):
                if sub[i, best[i]] > 0.0:
                    a[i] = jobs[best[i]]
        return a

    return ScheduleResult(
        schedule=AdaptivePolicy(rule, name="greedy-prob", stationary=True, randomized=False),
        algorithm="greedy_prob_policy",
    )


def random_policy(instance: SUUInstance) -> ScheduleResult:
    """Adaptive uniform-random assignment over eligible jobs."""

    def rule(inst, unfinished, eligible, t, rng):
        a = np.full(inst.m, IDLE, dtype=np.int32)
        if eligible:
            jobs = np.asarray(sorted(eligible), dtype=np.int64)
            picks = rng.integers(0, len(jobs), size=inst.m)
            a[:] = jobs[picks]
        return a

    return ScheduleResult(
        schedule=AdaptivePolicy(rule, name="random", stationary=True, randomized=True),
        algorithm="random_policy",
    )


def msm_eligible_policy(instance: SUUInstance) -> ScheduleResult:
    """Adaptive MSM-ALG restricted to *eligible* unfinished jobs.

    The natural extension of SUU-I-ALG (Figure 2) to precedence DAGs:
    every step, run the greedy MaxSumMass assignment over the jobs that can
    actually execute.  No approximation guarantee is claimed for this
    heuristic — the paper's DAG results go through the LP pipeline instead
    — but it is the strongest simple adaptive comparator.

    Running plain SUU-I-ALG over the whole unfinished set can *livelock*
    under precedence semantics (machines keep getting assigned to
    ineligible jobs and idle forever), which is itself an instructive
    failure; this policy is the repaired version.
    """
    from .msm import msm_alg

    p = instance.p

    def rule(inst, unfinished, eligible, t, rng):
        return msm_alg(p, jobs=sorted(eligible))

    return ScheduleResult(
        schedule=AdaptivePolicy(rule, name="msm-eligible", stationary=True, randomized=False),
        algorithm="msm_eligible_policy",
    )


def exact_baseline(instance: SUUInstance, max_states: int = 1 << 14) -> ScheduleResult:
    """The exact optimal regimen (small instances; Malewicz's DP)."""
    sol = optimal_regimen(instance, max_states=max_states)
    return ScheduleResult(
        schedule=sol.regimen,
        algorithm="exact_baseline",
        certificates={"expected_makespan": sol.expected_makespan},
    )


def state_round_robin_regimen(
    instance: SUUInstance, max_states: int = 1 << 20
) -> ScheduleResult:
    """Round-robin over each state's *eligible* jobs, as an explicit regimen.

    The state-dependent cousin of :func:`round_robin_baseline`: in state
    ``S``, machine ``i`` takes the ``i``-th eligible job of ``S``
    (cyclically).  Unlike the Malewicz DP this materializes in ``O(2^n ·
    n)`` time with no assignment enumeration, so it is the standard
    *evaluation workload* for the exact Markov engines at n ≈ 14–20
    (``benchmarks/bench_perf_exact_markov.py``, the engine-equivalence
    property tests, and the ``state_round_robin`` registry algorithm) —
    a nontrivial regimen whose exact expected makespan is well-defined
    because every eligible job set is nonempty and every job has a
    positive-probability machine.
    """
    from .._util import iterable_from_bitmask
    from ..sim.exact import check_state_budget
    from ..sim.markov import eligible_bitmask

    n, m = instance.n, instance.m
    check_state_budget(n, 1, max_states)
    assignments: dict[int, np.ndarray] = {}
    for state in range(1, 1 << n):
        jobs = iterable_from_bitmask(eligible_bitmask(instance, state))
        assignments[state] = np.array(
            [jobs[i % len(jobs)] for i in range(m)], dtype=np.int32
        )
    return ScheduleResult(
        schedule=Regimen(n, m, assignments),
        algorithm="state_round_robin",
    )


def all_baselines(instance: SUUInstance) -> dict[str, ScheduleResult]:
    """The standard comparator set (excluding the exact solver)."""
    return {
        "serial": serial_baseline(instance),
        "round_robin": round_robin_baseline(instance),
        "greedy": greedy_prob_policy(instance),
        "random": random_policy(instance),
    }

"""The front-door ``solve()``: a strongest-applicable registry query.

Dispatch is driven entirely by the capability-typed solver registry
(:mod:`repro.algorithms.registry`): among the registered solvers whose
declared ``dag_classes`` admit the instance, the one with the smallest
``auto_rank`` wins.  The built-in ranks reproduce the paper's
strongest-applicable order exactly — independent → :func:`~.independent.
suu_i_lp`, chains → :func:`~.chains.solve_chains`, in-/out-forest →
:func:`~.trees.solve_tree`, mixed forest → :func:`~.trees.solve_forest` —
and the general-DAG depth-layered extension is marked ``fallback``, so it
only enters the query with ``allow_fallback=True``.

The per-solver capability and guarantee table lives in the registry
(``suu algorithms list`` renders it;
:func:`~.registry.describe_solvers` returns the rows), so there is no
hand-maintained copy here to drift.

General DAGs are outside the paper's classes (§5 open problem); without
the fallback the query comes up empty and :class:`UnsupportedDagError`
is raised so callers notice they left the paper's territory.
"""

from __future__ import annotations

from ..core.instance import SUUInstance
from ..core.schedule import ScheduleResult
from ..errors import UnsupportedDagError
from .constants import PRACTICAL, SUUConstants
from .registry import SOLVERS, resolve_solver

__all__ = ["solve"]

#: ``method=`` names accepted by :func:`solve`.  Every non-auto method is
#: a registry solver name; ``auto`` runs the strongest-applicable query.
_METHODS = {
    "auto",
    "adaptive",
    "oblivious",
    "lp",
    "chains",
    "tree",
    "forest",
    "layered",
    "serial",
}


def solve(
    instance: SUUInstance,
    constants: SUUConstants = PRACTICAL,
    rng=None,
    method: str = "auto",
    allow_fallback: bool = False,
) -> ScheduleResult:
    """Schedule ``instance`` with the strongest applicable paper algorithm.

    ``method`` forces a specific algorithm:

    * ``"adaptive"`` — SUU-I-ALG (independent jobs only);
    * ``"oblivious"`` — SUU-I-OBL (independent jobs only);
    * ``"lp"`` — Theorem 4.5 LP schedule (independent jobs only);
    * ``"chains"`` / ``"tree"`` / ``"forest"`` — the §4 pipelines;
    * ``"layered"`` — the general-DAG depth-layer extension;
    * ``"serial"`` — the always-correct serial baseline;
    * ``"auto"`` — dispatch on the DAG class (default).

    A forced method runs its solver unconditionally — capability
    violations surface as the solver's own error, with its own wording.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {sorted(_METHODS)}")
    if method != "auto":
        return resolve_solver(method).build(instance, constants=constants, rng=rng)

    cls = instance.classify()
    ranked = sorted(
        (
            s
            for s in SOLVERS.values()
            if s.auto_rank is not None
            and cls in s.dag_classes
            and (allow_fallback or not s.fallback)
        ),
        key=lambda s: s.auto_rank,
    )
    if ranked:
        return ranked[0].build(instance, constants=constants, rng=rng)
    raise UnsupportedDagError(
        "general precedence DAGs are outside the paper's algorithm classes "
        "(§5 lists them as an open problem); pass allow_fallback=True for "
        "the depth-layered extension (guarantee scales with DAG depth), use "
        "method='layered'/'serial' explicitly, or transitively reduce the DAG"
    )

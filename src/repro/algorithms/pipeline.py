"""The front-door ``solve()``: dispatch on the precedence class.

Picks the strongest applicable algorithm from the paper:

========================  =====================================  =========
DAG class                 algorithm                              guarantee
========================  =====================================  =========
independent               :func:`~.independent.suu_i_lp`         O(log n log min(n,m))
disjoint chains           :func:`~.chains.solve_chains`          O(log m log n log(n+m)/loglog)
in-/out-forest            :func:`~.trees.solve_tree`             O(log m log² n)
mixed forest              :func:`~.trees.solve_forest`           O(log m log² n log(n+m)/loglog)
general                   :func:`~.layered.solve_layered`        O(depth · log n · log min(n,m))
========================  =====================================  =========

General DAGs are outside the paper's classes (§5 open problem); the
layered extension handles them with a depth-dependent guarantee when
``allow_fallback=True`` (or ``method="layered"``), otherwise
:class:`UnsupportedDagError` is raised so callers notice they left the
paper's territory.
"""

from __future__ import annotations

from ..core.dag import DagClass
from ..core.instance import SUUInstance
from ..core.schedule import ScheduleResult
from ..errors import UnsupportedDagError
from .baselines import serial_baseline
from .chains import solve_chains
from .constants import PRACTICAL, SUUConstants
from .independent import suu_i_adaptive, suu_i_lp, suu_i_oblivious
from .layered import solve_layered
from .trees import solve_forest, solve_tree

__all__ = ["solve"]

_METHODS = {
    "auto",
    "adaptive",
    "oblivious",
    "lp",
    "chains",
    "tree",
    "forest",
    "layered",
    "serial",
}


def solve(
    instance: SUUInstance,
    constants: SUUConstants = PRACTICAL,
    rng=None,
    method: str = "auto",
    allow_fallback: bool = False,
) -> ScheduleResult:
    """Schedule ``instance`` with the strongest applicable paper algorithm.

    ``method`` forces a specific algorithm:

    * ``"adaptive"`` — SUU-I-ALG (independent jobs only);
    * ``"oblivious"`` — SUU-I-OBL (independent jobs only);
    * ``"lp"`` — Theorem 4.5 LP schedule (independent jobs only);
    * ``"chains"`` / ``"tree"`` / ``"forest"`` — the §4 pipelines;
    * ``"layered"`` — the general-DAG depth-layer extension;
    * ``"serial"`` — the always-correct serial baseline;
    * ``"auto"`` — dispatch on the DAG class (default).
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {sorted(_METHODS)}")
    if method == "adaptive":
        return suu_i_adaptive(instance)
    if method == "oblivious":
        return suu_i_oblivious(instance, constants)
    if method == "lp":
        return suu_i_lp(instance, constants)
    if method == "chains":
        return solve_chains(instance, constants, rng)
    if method == "tree":
        return solve_tree(instance, constants, rng)
    if method == "forest":
        return solve_forest(instance, constants, rng)
    if method == "layered":
        return solve_layered(instance, constants, rng)
    if method == "serial":
        return serial_baseline(instance)

    cls = instance.classify()
    if cls == DagClass.INDEPENDENT:
        return suu_i_lp(instance, constants)
    if cls == DagClass.CHAINS:
        return solve_chains(instance, constants, rng)
    if cls in (DagClass.OUT_FOREST, DagClass.IN_FOREST):
        return solve_tree(instance, constants, rng)
    if cls == DagClass.MIXED_FOREST:
        return solve_forest(instance, constants, rng)
    if allow_fallback:
        return solve_layered(instance, constants, rng)
    raise UnsupportedDagError(
        "general precedence DAGs are outside the paper's algorithm classes "
        "(§5 lists them as an open problem); pass allow_fallback=True for "
        "the depth-layered extension (guarantee scales with DAG depth), use "
        "method='layered'/'serial' explicitly, or transitively reduce the DAG"
    )

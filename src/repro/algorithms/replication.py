"""Schedule replication and the serial safety tail (§4.1).

Every oblivious construction in the paper ends the same way: replicate the
core schedule's steps ``σ = O(log n)`` times so all jobs finish with high
probability, then append the infinite schedule ``Σ_{o,3}`` that cycles
through the jobs in topological order with *all* machines on one job per
step.  The tail contributes ``O(1/n²) · n² T^OPT = O(T^OPT)`` to the
expectation while guaranteeing the makespan is finite on every sample path.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import SUUInstance
from ..core.schedule import CyclicSchedule, ObliviousSchedule

__all__ = ["serial_tail", "replicate_with_tail"]


def serial_tail(instance: SUUInstance) -> ObliviousSchedule:
    """The paper's ``Σ_{o,3}``: step ``k`` assigns all machines to job ``τ(k)``.

    Jobs appear in topological order, so cycling the tail respects every
    precedence constraint and completes any single remaining job in
    expected ``≤ n / q_j`` steps.
    """
    order = instance.dag.topological_order()
    table = np.empty((max(1, instance.n), instance.m), dtype=np.int32)
    if instance.n == 0:
        table[:] = -1
        return ObliviousSchedule(table)
    for k, j in enumerate(order):
        table[k, :] = j
    return ObliviousSchedule(table)


def replicate_with_tail(
    core: ObliviousSchedule, instance: SUUInstance, sigma: int
) -> CyclicSchedule:
    """``Σ_o = core^{×σ} ∘ Σ_{o,3}^∞`` — the final §4.1 assembly.

    Each *step* of ``core`` is replicated ``σ`` times in place (preserving
    window order, hence precedence validity), and the serial tail is
    appended as the infinite cycle.
    """
    prefix = core.replicate_steps(sigma) if core.length else core
    return CyclicSchedule(prefix, serial_tail(instance))

"""Portfolio runner: race every capability-admitting solver on one instance.

The registry (:mod:`repro.algorithms.registry`) declares which solvers
admit an instance; :func:`run_portfolio` runs each one, judges every
schedule through the :func:`repro.evaluate.evaluate` front door at a
shared seed/budget, and returns a provenance-carrying leaderboard: each
:class:`PortfolioEntry` holds the solver's record metadata, the full
:class:`~repro.evaluate.report.EvaluationReport` (CI or exactness plus
engine provenance), wall-clock split (solve vs evaluate), and the
telemetry counters the solver+evaluation accumulated.  The winner is the
entry with the smallest evaluated makespan (ties to the lexicographically
first name — deterministic).

Observability: ``portfolio.solvers_run`` / ``portfolio.solvers_skipped``
counters, one ``portfolio.solver`` span per member (under a ``portfolio``
root span) when telemetry is enabled.

Consumed by the ``suu portfolio`` CLI subcommand, the registered
``portfolio`` experiment suite, and the ``portfolio`` verify oracle that
certifies the leaderboard's lower-bound sandwich on small instances.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.instance import SUUInstance
from ..core.schedule import ScheduleResult
from ..errors import CensoredEstimateWarning, ReproError
from .constants import PRACTICAL, SUUConstants
from .registry import Solver, iter_solvers, resolve_solver

__all__ = ["PortfolioEntry", "PortfolioReport", "run_portfolio", "solver_rng"]


def solver_rng(seed: int, name: str) -> np.random.Generator:
    """Deterministic per-solver stream: independent of the member list.

    Seeding with ``(seed, *name_bytes)`` means adding or removing other
    solvers from the portfolio never changes a member's schedule.
    """
    return np.random.default_rng((seed, *name.encode()))


@dataclass
class PortfolioEntry:
    """One leaderboard row: schedule + judgment + provenance."""

    solver: str
    guarantee: str
    paper: str
    adaptivity: str
    result: ScheduleResult
    report: object  # EvaluationReport (kept untyped to avoid an import cycle)
    solve_time_s: float
    eval_time_s: float
    counters: dict = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.report.makespan

    def to_dict(self) -> dict:
        return {
            "solver": self.solver,
            "algorithm": self.result.algorithm,
            "guarantee": self.guarantee,
            "paper": self.paper,
            "adaptivity": self.adaptivity,
            "makespan": self.report.makespan,
            "std_err": self.report.std_err,
            "ci95": list(self.report.ci95),
            "exact": self.report.exact,
            "n_reps": self.report.n_reps,
            "truncated": self.report.truncated,
            "mode": self.report.mode,
            "engine": self.report.engine,
            "schedule_kind": self.report.schedule_kind,
            "solve_time_s": self.solve_time_s,
            "eval_time_s": self.eval_time_s,
            "counters": dict(self.counters),
        }


@dataclass
class PortfolioReport:
    """The full leaderboard plus everything that did not make it on."""

    instance_name: str
    n: int
    m: int
    dag_class: str
    seed: int
    entries: list[PortfolioEntry]
    #: ``(solver_name, reason)`` for members that were filtered or failed.
    skipped: list[tuple[str, str]]

    @property
    def winner(self) -> PortfolioEntry | None:
        return self.entries[0] if self.entries else None

    def entry(self, solver: str) -> PortfolioEntry:
        for e in self.entries:
            if e.solver == solver:
                return e
        raise KeyError(f"solver {solver!r} is not on the leaderboard")

    def to_dict(self) -> dict:
        return {
            "instance": self.instance_name,
            "n": self.n,
            "m": self.m,
            "dag_class": self.dag_class,
            "seed": self.seed,
            "winner": self.winner.solver if self.winner else None,
            "leaderboard": [e.to_dict() for e in self.entries],
            "skipped": [{"solver": s, "reason": r} for s, r in self.skipped],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def run_portfolio(
    instance: SUUInstance,
    solvers: list[str] | None = None,
    constants: SUUConstants = PRACTICAL,
    seed: int = 0,
    reps: int = 200,
    max_steps: int = 200_000,
    mode: str = "auto",
    workers: int | None = None,
    executor: str | None = None,
    shards: int | None = None,
) -> PortfolioReport:
    """Race solvers on ``instance`` and rank them by evaluated makespan.

    ``solvers=None`` enters every registered solver whose declared
    capabilities admit the instance (:func:`iter_solvers`); an explicit
    name list restricts the field but still capability-filters it (a
    non-admitting name is skipped with a reason, not an error).  Each
    member schedules with its own :func:`solver_rng` stream, then is
    judged through one shared ``evaluate()`` configuration, so rows are
    comparable: same seed, same replication budget, same step cap.

    A member whose solve or evaluation raises a
    :class:`~repro.errors.ReproError` is skipped with the message as the
    reason — one broken solver must not take down the leaderboard.
    """
    from ..evaluate import evaluate  # lazy: algorithms must import before evaluate

    candidates: list[Solver]
    if solvers is None:
        candidates = iter_solvers(instance)
        filtered: list[tuple[str, str]] = []
    else:
        candidates = []
        filtered = []
        for name in solvers:
            rec = resolve_solver(name)
            if rec.supports(instance):
                candidates.append(rec)
            else:
                filtered.append(
                    (name, f"capabilities exclude {instance.classify().value} "
                           f"at n={instance.n}, m={instance.m}")
                )

    entries: list[PortfolioEntry] = []
    skipped: list[tuple[str, str]] = list(filtered)
    with obs.span("portfolio", instance=instance.name, members=len(candidates)):
        for rec in candidates:
            with obs.span("portfolio.solver", solver=rec.name):
                before = obs.counters() if obs.enabled() else {}
                sw_solve = obs.stopwatch()
                try:
                    result = rec.build(
                        instance, constants=constants, rng=solver_rng(seed, rec.name)
                    )
                    solve_time = sw_solve.elapsed_s
                    sw_eval = obs.stopwatch()
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", CensoredEstimateWarning)
                        report = evaluate(
                            instance,
                            result.schedule,
                            mode=mode,
                            reps=reps,
                            seed=seed,
                            max_steps=max_steps,
                            workers=workers,
                            executor=executor,
                            shards=shards,
                        )
                except ReproError as exc:
                    skipped.append((rec.name, f"{type(exc).__name__}: {exc}"))
                    continue
                entries.append(
                    PortfolioEntry(
                        solver=rec.name,
                        guarantee=rec.guarantee,
                        paper=rec.paper,
                        adaptivity=rec.adaptivity,
                        result=result,
                        report=report,
                        solve_time_s=solve_time,
                        eval_time_s=sw_eval.elapsed_s,
                        counters=obs.counters_since(before) if obs.enabled() else {},
                    )
                )
    obs.add("portfolio.solvers_run", len(entries))
    obs.add("portfolio.solvers_skipped", len(skipped))
    entries.sort(key=lambda e: (e.makespan, e.solver))
    return PortfolioReport(
        instance_name=instance.name or f"instance(n={instance.n},m={instance.m})",
        n=instance.n,
        m=instance.m,
        dag_class=instance.classify().value,
        seed=seed,
        entries=entries,
        skipped=skipped,
    )

"""Trees and directed forests (§4.2, Theorems 4.7 and 4.8).

Both algorithms follow [17]: chain-decompose the forest into ordered blocks
``B_1, ..., B_γ`` (γ = O(log n), Lemma 4.6), run the disjoint-chains
pipeline *inside* each block, and concatenate the per-block schedules in
block order.  Condition (ii) of the decomposition guarantees every
precedence edge either stays inside a block (where it lies along a chain,
handled by the chain pipeline) or crosses from an earlier block to a later
one (handled by concatenation).  The extra factor γ = O(log n) is the gap
between Theorem 4.4 and Theorems 4.7/4.8.

For in-/out-trees (Theorem 4.8) the delay window inside each block is
narrowed to ``Π_max / log n`` and the congestion target to ``O(log n)``,
which is how the paper sharpens ``log(n+m)/log log(n+m)`` to ``log n``.
"""

from __future__ import annotations

import math

from .._util import as_rng, log2p
from ..core.dag import DagClass
from ..core.instance import SUUInstance
from ..core.schedule import ObliviousSchedule, ScheduleResult
from ..decomp.chain_decomposition import ChainDecomposition, decompose_forest
from ..errors import UnsupportedDagError
from .chains import solve_chains
from .constants import PRACTICAL, SUUConstants
from .replication import replicate_with_tail

__all__ = ["solve_forest", "solve_tree"]

_TREE_CLASSES = (DagClass.OUT_FOREST, DagClass.IN_FOREST)


def _solve_blocks(
    instance: SUUInstance,
    decomposition: ChainDecomposition,
    constants: SUUConstants,
    rng,
    tree_mode: bool,
) -> tuple[ObliviousSchedule, list[dict]]:
    """Run the chain pipeline per block; concatenate the finite cores."""
    core = ObliviousSchedule.empty(instance.m)
    block_certs: list[dict] = []
    for b, block in enumerate(decomposition.blocks):
        jobs = [j for chain in block for j in chain]
        sub, old_to_new = instance.induced(jobs)
        sub_chains = [[old_to_new[j] for j in chain] for chain in block]
        if tree_mode:
            # Theorem 4.8 parameters: delay window Π_max / log n and an
            # O(log n) congestion target, both relative to the full
            # instance size as in the paper's analysis.
            log_n = log2p(instance.n)
            target = max(2, int(math.ceil(constants.delay_alpha * log_n)))
            divisor = log_n
        else:
            target = None
            divisor = None
        result = solve_chains(
            sub,
            constants=constants,
            rng=rng,
            chains=sub_chains,
            collision_target=target,
            window_divisor=divisor,
        )
        new_to_old = {v: k for k, v in old_to_new.items()}
        block_core = result.finite_core.relabel_jobs(new_to_old)
        # Replicate each block's core so the block completes whp before the
        # next block starts (the per-block analogue of §4.1 replication).
        sigma = constants.replication_sigma(len(jobs))
        core = core.concat(block_core.replicate_steps(sigma))
        cert = dict(result.certificates)
        cert["block"] = b
        cert["block_jobs"] = len(jobs)
        block_certs.append(cert)
    return core, block_certs


def _solve_decomposed(
    instance: SUUInstance,
    constants: SUUConstants,
    rng,
    tree_mode: bool,
    algorithm: str,
    guarantee: str,
) -> ScheduleResult:
    rng = as_rng(rng)
    decomposition = decompose_forest(instance.dag)
    core, block_certs = _solve_blocks(
        instance, decomposition, constants, rng, tree_mode
    )
    schedule = replicate_with_tail(core, instance, sigma=1)
    return ScheduleResult(
        schedule=schedule,
        algorithm=algorithm,
        finite_core=core,
        certificates={
            "decomposition_width": decomposition.width,
            "blocks": block_certs,
            "core_length": core.length,
            "guarantee": guarantee,
        },
        meta={"constants": constants},
    )


def solve_tree(
    instance: SUUInstance,
    constants: SUUConstants = PRACTICAL,
    rng=None,
) -> ScheduleResult:
    """Theorem 4.8: in-/out-forests, ``O(log m log² n)``-approximate."""
    cls = instance.classify()
    if cls not in _TREE_CLASSES and cls not in (DagClass.CHAINS, DagClass.INDEPENDENT):
        raise UnsupportedDagError(
            f"solve_tree needs an in-/out-forest, got {cls.value}"
        )
    return _solve_decomposed(
        instance,
        constants,
        rng,
        tree_mode=True,
        algorithm="solve_tree",
        guarantee="O(log m log^2 n) x TOPT (Thm 4.8)",
    )


def solve_forest(
    instance: SUUInstance,
    constants: SUUConstants = PRACTICAL,
    rng=None,
) -> ScheduleResult:
    """Theorem 4.7: directed forests,
    ``O(log m log² n log(n+m)/log log(n+m))``-approximate."""
    if not instance.dag.is_forest():
        raise UnsupportedDagError(
            "solve_forest requires the underlying undirected graph to be a forest"
        )
    return _solve_decomposed(
        instance,
        constants,
        rng,
        tree_mode=False,
        algorithm="solve_forest",
        guarantee="O(log m log^2 n log(n+m)/loglog(n+m)) x TOPT (Thm 4.7)",
    )

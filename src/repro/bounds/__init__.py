"""Certified lower bounds on the optimal expected makespan."""

from .lower import LEMMA42_FACTOR, LowerBounds, lower_bounds, lp_lower_bound

__all__ = ["LEMMA42_FACTOR", "LowerBounds", "lower_bounds", "lp_lower_bound"]

"""Certified lower bounds on the optimal expected makespan ``T^OPT``.

On instances too large for the exact Malewicz DP, approximation ratios are
reported against a lower bound, making every reported ratio an *upper
bound* on the true ratio.  Five bounds are combined:

* **single job** — with every machine on job ``j`` each step, its one-step
  success probability is ``q_j = 1 − Π_i (1 − p_ij)``; no schedule does
  better, so ``E[C_j] ≥ 1/q_j`` and ``T^OPT ≥ max_j 1/q_j``.
* **critical path** — jobs along a directed path execute sequentially and
  job ``j`` alone needs expected ``≥ 1/q_j`` steps, so ``T^OPT`` is at
  least the maximum path weight under weights ``1/q_j``.
* **LP relaxation** — Lemma 4.2: the (LP1) optimum satisfies
  ``T* ≤ 16 · T^OPT``, hence ``T^OPT ≥ T*/16``.  Valid for any vertex-
  disjoint family of directed paths used as "chains", because the lemma's
  proof only uses that chain jobs execute sequentially under any schedule.
* **throughput** — in any step, the expected number of completions is at
  most ``ρ = Σ_i max_j p_ij``: by Proposition 2.1 the per-job success
  probabilities sum to at most the step's total mass, which is at most
  ``ρ`` for any assignment.  The completion count is a supermartingale-
  bounded process, so by optional stopping ``n ≤ ρ · E[makespan]``, i.e.
  ``T^OPT ≥ n/ρ``.  This is the bound that scales linearly with ``n`` and
  anchors the ratio measurements on wide instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dag import DagClass
from ..core.instance import SUUInstance
from ..lp.acc_mass import solve_lp1

__all__ = ["LowerBounds", "lower_bounds", "lp_lower_bound"]

#: Lemma 4.2 constant: T* <= 16 TOPT.
LEMMA42_FACTOR = 16.0


@dataclass
class LowerBounds:
    """The individual bounds and their maximum."""

    single_job: float
    critical_path: float
    lp: float
    throughput: float
    trivial_steps: float

    @property
    def best(self) -> float:
        return max(
            self.single_job,
            self.critical_path,
            self.lp,
            self.throughput,
            self.trivial_steps,
        )

    def as_dict(self) -> dict:
        return {
            "single_job": self.single_job,
            "critical_path": self.critical_path,
            "lp": self.lp,
            "throughput": self.throughput,
            "trivial_steps": self.trivial_steps,
            "best": self.best,
        }


def _greedy_path_cover(instance: SUUInstance) -> list[list[int]]:
    """A vertex-disjoint family of directed paths covering all jobs.

    Used as the "chains" of (LP1) when the DAG is not already a chain
    collection: peel maximal paths greedily in topological order.  Any
    such family makes Lemma 4.2's proof go through, so the resulting LP
    bound is valid for arbitrary DAGs.
    """
    dag = instance.dag
    used: set[int] = set()
    chains: list[list[int]] = []
    for j in dag.topological_order():
        if j in used:
            continue
        chain = [j]
        used.add(j)
        cur = j
        extended = True
        while extended:
            extended = False
            for s in dag.successors(cur):
                if s not in used:
                    chain.append(s)
                    used.add(s)
                    cur = s
                    extended = True
                    break
        chains.append(chain)
    return chains


def lp_lower_bound(instance: SUUInstance, engine: str = "vector") -> float:
    """``T*/16`` via Lemma 4.2, with a greedy path cover as the chains.

    ``engine`` selects the LP construction engine
    (:data:`repro.lp.LP_ENGINES`); both give the same bound to 1e-9.
    """
    if instance.classify() in (DagClass.INDEPENDENT, DagClass.CHAINS):
        chains = instance.dag.chains()
    else:
        chains = _greedy_path_cover(instance)
    frac = solve_lp1(instance, chains=chains, engine=engine)
    return frac.t / LEMMA42_FACTOR


def lower_bounds(
    instance: SUUInstance, include_lp: bool = True, lp_engine: str = "vector"
) -> LowerBounds:
    """Compute all lower bounds; ``best`` is their maximum.

    ``include_lp=False`` skips the LP solve (the only non-trivial cost);
    ``lp_engine`` selects the LP construction engine when it runs.
    """
    q = instance.all_machines_success
    # q_j > 0 by the standing assumption (some p_ij > 0).
    inv_q = 1.0 / q
    single = float(inv_q.max())
    path = float(instance.dag.longest_path_length(weights=inv_q))
    lp = lp_lower_bound(instance, engine=lp_engine) if include_lp else 0.0
    # Per-step expected completions <= rho (Prop 2.1 + optional stopping).
    rho = float(instance.p.max(axis=1).sum())
    throughput = instance.n / max(rho, 1e-12)
    # Any execution needs at least one step, and at least as many steps as
    # the length (in jobs) of the critical path.
    trivial = float(max(1.0, instance.dag.longest_path_length()))
    return LowerBounds(
        single_job=single,
        critical_path=path,
        lp=lp,
        throughput=throughput,
        trivial_steps=trivial,
    )

"""Flattening a pseudo-schedule into a feasible oblivious schedule (§4.1).

After random delays bound the per-(machine, step) congestion by ``c``, each
original step is expanded into ``c`` micro-steps and a machine's (at most
``c``) jobs of that step are laid out across them.  Expansion preserves the
relative order of distinct steps, so chain windows — and therefore the
AccMass precedence condition — survive; the schedule length multiplies by
exactly ``c``, which is where the ``O(log(n+m)/log log(n+m))`` factor of
Theorem 4.4 enters.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import IDLE, ObliviousSchedule, PseudoSchedule

__all__ = ["flatten_pseudo"]


def flatten_pseudo(pseudo: PseudoSchedule, expansion: int | None = None) -> ObliviousSchedule:
    """Expand each step into ``expansion`` micro-steps (default: max collision).

    ``expansion`` must be at least the pseudo-schedule's max collision;
    within an expanded step each machine's jobs occupy the first micro-steps
    in their listed order and the machine idles for the rest.
    """
    c = pseudo.max_collision()
    if expansion is None:
        expansion = max(1, c)
    if expansion < c:
        raise ValueError(
            f"expansion {expansion} below the max collision {c}"
        )
    T = pseudo.length
    table = np.full((T * expansion, pseudo.m), IDLE, dtype=np.int32)
    for t in range(T):
        for i in range(pseudo.m):
            for k, job in enumerate(pseudo.jobs_at(t, i)):
                table[t * expansion + k, i] = job
    return ObliviousSchedule(table)

"""Deterministic delay selection by the method of conditional expectations.

The paper notes the random delays can be derandomized ([22, 25, 27]).  We
implement the standard pessimistic-estimator argument: for a parameter
``λ > 0`` the potential

    Φ(delays) = Σ_{(machine, step)} exp(λ · load(machine, step))

upper-bounds ``exp(λ · max_load)``.  Delays are fixed one chain at a time,
each time choosing the value minimizing the *exact* conditional expectation
of Φ given the already-fixed chains and uniform random delays for the rest.
Since chains are independent, a cell's conditional expectation factorizes::

    E[exp(λ load(i,t))] = exp(λ fixed(i,t)) · Π_{k undecided} ef_k(i,t)

with ``ef_k(i,t) = E_d[exp(λ · units_k(i, t−d))]``.  The per-cell products
over undecided chains are maintained incrementally in log space, so every
greedy choice is the true argmin and the final potential is at most the
initial expectation — giving a deterministic congestion bound matching the
randomized one up to the constant absorbed in ``λ``.
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..core.schedule import ChainBand, ChainBands
from .random_delay import DelayOutcome, ssw_collision_bound

__all__ = ["derandomized_delays"]


def _cells_of_band(band: ChainBand) -> dict[tuple[int, int], int]:
    """Unit counts per (machine, step) cell for an (undelayed) band."""
    cells: dict[tuple[int, int], int] = defaultdict(int)
    for w in band.windows:
        for i, u in w.machine_units:
            for t in range(w.start, w.start + u):
                cells[(i, t)] += 1
    return dict(cells)


def _expected_factor_cells(
    cells: dict[tuple[int, int], int], window: int, lam: float, grid: int = 1
) -> dict[tuple[int, int], float]:
    """Log of ``ef_k(i, t)`` for every cell the chain can touch.

    For each base cell ``(i, t0)`` with ``u`` units, delays ``d`` with
    ``t = t0 + d`` put ``u`` units on ``(i, t)``; summing over base cells
    gives the shifted-unit function, from which the expectation over the
    uniform delay follows.
    """
    # units_at[(i, t)][d] is implicit: accumulate exp(λu)−1 mass per (cell, d).
    shifted: dict[tuple[int, int], dict[int, int]] = defaultdict(lambda: defaultdict(int))
    choices = list(range(0, window + 1, grid))
    for (i, t0), u in cells.items():
        for d in choices:
            shifted[(i, t0 + d)][d] += u
    log_ef: dict[tuple[int, int], float] = {}
    denom = len(choices)
    for cell, per_delay in shifted.items():
        # E_d[exp(λ·units(cell, d))] with units = 0 for delays not listed.
        total = float(denom - len(per_delay))
        for u in per_delay.values():
            total += math.exp(lam * u)
        log_ef[cell] = math.log(total / denom)
    return log_ef


def derandomized_delays(
    bands: ChainBands,
    window: int | None = None,
    lam: float = 1.0,
    n_jobs: int | None = None,
    alpha: float = 4.0,
    grid: int = 1,
) -> DelayOutcome:
    """Choose chain delays deterministically (conditional expectations).

    Returns the same :class:`DelayOutcome` shape as the random sampler with
    ``attempts = 1``.  ``lam`` is the exponential-moment parameter; 1.0
    works well across the workloads here (larger values penalize collisions
    more sharply but saturate sooner).
    """
    if window is None:
        window = bands.pi_max()
    if n_jobs is None:
        n_jobs = sum(len(b.windows) for b in bands.bands)
    target = ssw_collision_bound(n_jobs, bands.m, alpha=alpha)

    band_cells = [_cells_of_band(b) for b in bands.bands]
    band_log_ef = [
        _expected_factor_cells(c, window, lam, grid=grid) for c in band_cells
    ]

    # log_weight[(i,t)] = Σ over *undecided* chains of log ef_k(i,t).
    log_weight: dict[tuple[int, int], float] = defaultdict(float)
    for log_ef in band_log_ef:
        for cell, v in log_ef.items():
            log_weight[cell] += v
    fixed_load: dict[tuple[int, int], float] = defaultdict(float)

    delays: list[int] = []
    for k, cells in enumerate(band_cells):
        # Remove this chain's own expectation factor before comparing its
        # candidate (deterministic) placements.
        for cell, v in band_log_ef[k].items():
            log_weight[cell] -= v
        best_d = 0
        best_score = math.inf
        for d in range(0, window + 1, grid):
            score = 0.0
            for (i, t0), u in cells.items():
                cell = (i, t0 + d)
                base = fixed_load[cell]
                w = math.exp(log_weight[cell])
                score += w * (math.exp(lam * (base + u)) - math.exp(lam * base))
            if score < best_score - 1e-15:
                best_score = score
                best_d = d
        delays.append(best_d)
        for (i, t0), u in cells.items():
            fixed_load[(i, t0 + best_d)] += u

    delayed = bands.with_delays(delays)
    collision = delayed.to_pseudo().max_collision()
    return DelayOutcome(
        bands=delayed,
        delays=delays,
        max_collision=collision,
        attempts=1,
        window=window,
        target=target,
    )

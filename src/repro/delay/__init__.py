"""Random/derandomized chain delays and pseudo-schedule flattening."""

from .derandomize import derandomized_delays
from .flatten import flatten_pseudo
from .random_delay import DelayOutcome, find_good_delays, sample_delays, ssw_collision_bound

__all__ = [
    "DelayOutcome",
    "derandomized_delays",
    "find_good_delays",
    "flatten_pseudo",
    "sample_delays",
    "ssw_collision_bound",
]

"""Random chain delays (§4.1, after Shmoys–Stein–Wein [27]).

The pseudo-schedule produced by Theorem 4.1 may put many jobs on one
machine in one step.  Delaying the start of each chain by an independent
uniform amount from ``[0, Π_max]`` makes the maximum per-(machine, step)
congestion ``O(log(n+m) / log log(n+m))`` with high probability — the
classic job-shop random-delay argument.  This module implements the random
sampler with a retry loop (the derandomized variant lives in
:mod:`repro.delay.derandomize`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._util import as_rng
from ..core.schedule import ChainBands
from ..errors import ScheduleError

__all__ = ["ssw_collision_bound", "DelayOutcome", "sample_delays", "find_good_delays"]


def ssw_collision_bound(n: int, m: int, alpha: float = 4.0) -> int:
    """The target congestion ``α · log(n+m) / log log(n+m)``, at least 2.

    ``alpha`` plays the role of the paper's constant; 4 keeps the retry
    loop short across all workload sizes we generate while preserving the
    asymptotic shape (experiment E11 measures the actual congestion).
    """
    x = max(4.0, float(n + m))
    bound = alpha * math.log(x) / math.log(max(math.e, math.log(x)))
    return max(2, int(math.ceil(bound)))


@dataclass
class DelayOutcome:
    """Result of the delay search.

    ``bands`` is the delayed pseudo-schedule; ``delays`` the per-chain
    shifts; ``max_collision`` the achieved congestion; ``attempts`` how
    many delay samples the retry loop drew in total (1 for a first-try
    success; ``max_attempts`` when the budget was exhausted, in which case
    the best outcome seen is returned even if it was sampled earlier).
    """

    bands: ChainBands
    delays: list[int]
    max_collision: int
    attempts: int
    window: int
    target: int


def sample_delays(
    num_chains: int,
    window: int,
    rng: np.random.Generator | int | None = None,
    grid: int = 1,
) -> list[int]:
    """Independent uniform delays from ``{0, g, 2g, ..., <= window}`` per chain.

    ``grid`` implements the §4.1 "reducing T^OPT" trick: when ``Π_max`` is
    astronomically large the delay choices are coarsened to multiples of
    ``g ≈ Π_max / (nm)`` so that only polynomially many candidates exist;
    the paper rounds the unit counts to the same grid, which our bands keep
    implicit by shifting whole chains on grid multiples.
    """
    rng = as_rng(rng)
    if window < 0:
        raise ScheduleError("delay window must be >= 0")
    if grid < 1:
        raise ScheduleError("delay grid must be >= 1")
    slots = window // grid + 1
    return [int(d) * grid for d in rng.integers(0, slots, size=num_chains)]


def find_good_delays(
    bands: ChainBands,
    window: int | None = None,
    target: int | None = None,
    rng: np.random.Generator | int | None = None,
    max_attempts: int = 64,
    alpha: float = 4.0,
    n_jobs: int | None = None,
    grid: int = 1,
) -> DelayOutcome:
    """Sample delays until the congestion target is met (whp: 1–2 tries).

    Parameters
    ----------
    bands:
        The undelayed chain bands (one band per chain).
    window:
        Delay range; defaults to the paper's ``Π_max`` (the load).  The
        tree algorithm (Thm 4.8) passes ``Π_max / log n`` instead.
    target:
        Congestion to reach; defaults to :func:`ssw_collision_bound`.
    max_attempts:
        Retry budget; with the theorem's failure probability polynomially
        small this is effectively never exhausted, but if it is, the best
        outcome seen is returned rather than looping forever.
    n_jobs:
        Job count used for the default bound (defaults to the number of
        jobs appearing in the bands).
    """
    rng = as_rng(rng)
    if window is None:
        window = bands.pi_max()
    if n_jobs is None:
        n_jobs = sum(len(b.windows) for b in bands.bands)
    if target is None:
        target = ssw_collision_bound(n_jobs, bands.m, alpha=alpha)
    best: DelayOutcome | None = None
    num_chains = len(bands.bands)
    for attempt in range(1, max_attempts + 1):
        # A fresh independent sample every attempt: the whp guarantee is
        # per-draw, so re-testing a stale sample would never terminate.
        delays = sample_delays(num_chains, window, rng, grid=grid)
        delayed = bands.with_delays(delays)
        collision = delayed.to_pseudo().max_collision()
        outcome = DelayOutcome(
            bands=delayed,
            delays=delays,
            max_collision=collision,
            attempts=attempt,
            window=window,
            target=target,
        )
        if collision <= target:
            return outcome
        if best is None or collision < best.max_collision:
            best = outcome
    assert best is not None
    # Budget exhausted: report the true number of samples drawn, not the
    # attempt at which the best (still-above-target) outcome was found.
    best.attempts = max_attempts
    return best

"""Terminal visualization: ASCII Gantt charts and sparklines."""

from .curves import render_curve, sparkline
from .gantt import render_gantt, render_machine_timeline

__all__ = ["render_curve", "sparkline", "render_gantt", "render_machine_timeline"]

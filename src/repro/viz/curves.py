"""Terminal sparklines and curve rendering for completion probabilities."""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "render_curve"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values, lo: float | None = None, hi: float | None = None) -> str:
    """Render a sequence of numbers as a unicode sparkline."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi - lo < 1e-12:
        return _BARS[0] * arr.size
    scaled = np.clip((arr - lo) / (hi - lo), 0.0, 1.0)
    idx = np.minimum((scaled * len(_BARS)).astype(int), len(_BARS) - 1)
    return "".join(_BARS[i] for i in idx)


def render_curve(
    values,
    width: int = 60,
    height: int = 10,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render a curve as an ASCII plot (rows = value bands, cols = samples).

    Values are resampled to ``width`` columns by taking the mean of each
    bucket; the y-axis spans [min, max] of the data.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return "(no data)"
    # resample to `width`
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges, edges[1:])])
    lo, hi = float(arr.min()), float(arr.max())
    span = max(hi - lo, 1e-12)
    rows: list[str] = []
    for level in range(height, 0, -1):
        threshold = lo + span * (level - 0.5) / height
        line = "".join("█" if v >= threshold else " " for v in arr)
        label = f"{lo + span * level / height:6.2f} |" if level in (1, height) else "       |"
        rows.append(label + line)
    out = []
    if title:
        out.append(title)
    out.extend(rows)
    out.append("       +" + "-" * len(arr))
    if y_label:
        out.append(f"        {y_label}")
    return "\n".join(out)

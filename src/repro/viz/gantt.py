"""ASCII Gantt rendering of oblivious schedules.

Oblivious schedules are fixed tables, so they can be *printed* — one of
their practical virtues the paper emphasizes (a staffing plan, a grid
reservation).  This renderer shows machines as rows and steps as columns,
one glyph per job.
"""

from __future__ import annotations

from ..core.instance import SUUInstance
from ..core.schedule import IDLE, CyclicSchedule, ObliviousSchedule

__all__ = ["render_gantt", "render_machine_timeline"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _job_glyph(j: int) -> str:
    if j == IDLE:
        return "."
    if j < len(_GLYPHS):
        return _GLYPHS[j]
    return "#"


def render_gantt(
    schedule: ObliviousSchedule | CyclicSchedule,
    max_steps: int = 60,
    instance: SUUInstance | None = None,
) -> str:
    """Render the first ``max_steps`` steps as an ASCII Gantt chart.

    Rows are machines, columns steps; each cell shows the assigned job's
    glyph (0-9, a-z, A-Z, then ``#`` beyond 62 jobs; ``.`` = idle).  With
    an ``instance``, machines whose assigned job would be idled by the
    execution semantics are *not* distinguished — the chart shows the plan,
    not an execution.
    """
    if isinstance(schedule, CyclicSchedule):
        table = schedule.truncate(max_steps).table
        cut = schedule.prefix_length if schedule.prefix_length < max_steps else None
    else:
        table = schedule.table[:max_steps]
        cut = None
    T, m = table.shape
    lines: list[str] = []
    header = "        " + "".join(str((t // 10) % 10) if t % 10 == 0 else " " for t in range(T))
    ruler = "  step  " + "".join(str(t % 10) for t in range(T))
    lines.append(header)
    lines.append(ruler)
    for i in range(m):
        row = "".join(_job_glyph(int(j)) for j in table[:, i])
        lines.append(f"  m{i:<4d}  {row}")
    if cut is not None:
        lines.append(f"  (serial tail begins at step {cut})")
    if instance is not None:
        lines.append(
            f"  jobs: {instance.n}, machines: {instance.m}, "
            f"dag: {instance.classify().value}"
        )
    return "\n".join(lines)


def render_machine_timeline(
    schedule: ObliviousSchedule, machine: int, max_steps: int = 200
) -> str:
    """A single machine's job sequence as a compact run-length string.

    Example output: ``j3×5 → j7×2 → idle×4 → j1×1``.
    """
    if not (0 <= machine < schedule.m):
        raise ValueError(f"machine {machine} out of range")
    col = schedule.table[:max_steps, machine]
    if col.size == 0:
        return "(empty schedule)"
    runs: list[tuple[int, int]] = []
    for j in col:
        if runs and runs[-1][0] == int(j):
            runs[-1] = (int(j), runs[-1][1] + 1)
        else:
            runs.append((int(j), 1))
    parts = [
        (f"idle×{c}" if j == IDLE else f"j{j}×{c}") for j, c in runs
    ]
    return " → ".join(parts)

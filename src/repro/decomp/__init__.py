"""Chain decomposition of forest DAGs (Lemma 4.6)."""

from .chain_decomposition import ChainDecomposition, decompose_forest, lemma46_width_bound

__all__ = ["ChainDecomposition", "decompose_forest", "lemma46_width_bound"]

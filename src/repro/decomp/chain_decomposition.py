"""Chain decomposition of forest DAGs (Lemma 4.6, after Kumar et al. [17]).

A *chain decomposition* partitions the vertex set into ordered blocks
``B_1, ..., B_λ`` such that

(i)  each block induces a collection of vertex-disjoint directed chains,
(ii) if ``u`` is an ancestor of ``v`` with ``u ∈ B_i`` and ``v ∈ B_j``,
     then ``i < j``, or ``i = j`` and ``u, v`` lie on the same chain.

The paper's tree/forest algorithms (Theorems 4.7, 4.8) schedule the blocks
one after another, running the disjoint-chains algorithm inside each block;
(i) makes each block a valid SUU-C instance and (ii) makes concatenation
respect all cross-block precedences.  The width bound ``λ ≤ 2(⌈log n⌉+1)``
is what caps the extra ``O(log n)`` approximation factor.

Two constructions are provided:

* **out-/in-forests** — the dyadic-size construction: block index of ``v``
  is determined by ``⌈log2⌉`` of its descendant (resp. ancestor) count.
  Along any root path the count strictly decreases, and no node can have
  two children in its own dyadic class (their descendant sets are disjoint
  in a forest), which yields (i) and (ii) with width ``≤ ⌈log2 n⌉ + 1``.

* **mixed forests** — greedy peeling: repeatedly extract the block of all
  maximal chains that start at currently-minimal vertices.  Conditions
  (i)/(ii) hold by construction; the width is checked per instance against
  the Lemma 4.6 bound and reported in the result (empirically it stays
  well under the bound on forest workloads — see experiment E12).

Every returned decomposition is validated against (i) and (ii).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.dag import DagClass, PrecedenceDAG
from ..errors import UnsupportedDagError, ValidationError

__all__ = ["ChainDecomposition", "decompose_forest", "lemma46_width_bound"]


def lemma46_width_bound(n: int) -> int:
    """The Lemma 4.6 width bound ``2(⌈log n⌉ + 1)``."""
    if n <= 1:
        return 2
    return 2 * (int(math.ceil(math.log2(n))) + 1)


@dataclass
class ChainDecomposition:
    """An ordered chain decomposition.

    ``blocks[b]`` is a list of chains; each chain is a list of job ids in
    precedence order.  ``width`` is the number of blocks λ.
    """

    dag: PrecedenceDAG
    blocks: list[list[list[int]]]

    @property
    def width(self) -> int:
        return len(self.blocks)

    def jobs_of_block(self, b: int) -> list[int]:
        return [j for chain in self.blocks[b] for j in chain]

    def all_jobs(self) -> list[int]:
        return [j for b in range(self.width) for j in self.jobs_of_block(b)]

    def block_of(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for b in range(self.width):
            for j in self.jobs_of_block(b):
                out[j] = b
        return out

    def chain_of(self) -> dict[int, tuple[int, int]]:
        """Maps job -> (block index, chain index within block)."""
        out: dict[int, tuple[int, int]] = {}
        for b, block in enumerate(self.blocks):
            for c, chain in enumerate(block):
                for j in chain:
                    out[j] = (b, c)
        return out

    def validate(self) -> None:
        """Check partition + conditions (i) and (ii); raise on violation."""
        dag = self.dag
        seen: set[int] = set()
        for b, block in enumerate(self.blocks):
            for chain in block:
                if not chain:
                    raise ValidationError(f"block {b} contains an empty chain")
                for j in chain:
                    if j in seen:
                        raise ValidationError(f"job {j} appears twice")
                    seen.add(j)
                # chain must be a directed path in the DAG
                for a, c in zip(chain, chain[1:]):
                    if c not in dag.successors(a):
                        raise ValidationError(
                            f"({a}, {c}) in a chain of block {b} is not a DAG edge"
                        )
        if seen != set(range(dag.n)):
            raise ValidationError("decomposition does not cover all jobs")
        # (i): chains within one block are vertex-disjoint by the partition
        # check above; also no DAG edge may link two *different* chains of
        # the same block (that would break the induced-chains property).
        chain_of = self.chain_of()
        block_of = self.block_of()
        for (u, v) in dag.edges:
            bu, bv = block_of[u], block_of[v]
            if bu > bv:
                raise ValidationError(
                    f"edge ({u}, {v}) goes from block {bu} to earlier block {bv}"
                )
            if bu == bv and chain_of[u] != chain_of[v]:
                raise ValidationError(
                    f"edge ({u}, {v}) links two different chains of block {bu}"
                )
        # (ii) for transitive (non-edge) ancestor pairs: ancestors must be
        # in strictly earlier blocks, or on the same chain.
        for v in range(dag.n):
            bv = block_of[v]
            for u in dag.ancestors(v):
                bu = block_of[u]
                if bu > bv:
                    raise ValidationError(
                        f"ancestor {u} of {v} sits in a later block"
                    )
                if bu == bv and chain_of[u] != chain_of[v]:
                    raise ValidationError(
                        f"ancestor {u} of {v} shares block {bu} but not a chain"
                    )


# ----------------------------------------------------------------------
# Out-/in-forest construction (dyadic descendant classes)
# ----------------------------------------------------------------------
def _dyadic_class(count: int) -> int:
    """Class of a node with ``count`` descendants+self: ``⌈log2(count)⌉``."""
    return int(math.ceil(math.log2(count))) if count > 1 else 0


def _decompose_out_forest(dag: PrecedenceDAG) -> list[list[list[int]]]:
    """Blocks for in-degree ≤ 1 DAGs, by decreasing dyadic descendant class.

    In an out-forest the descendant sets of a node's children are disjoint,
    so at most one child of ``u`` shares ``u``'s class — within a class the
    class-internal edges form vertex-disjoint chains.  Descendant counts
    strictly decrease along edges, so classes are monotone along paths and
    ordering blocks by decreasing class satisfies (ii): any ancestor in the
    same class is connected through same-class nodes, i.e. the same chain.
    """
    n = dag.n
    sizes = dag.descendant_counts() + 1  # subtree sizes (self included)
    cls = [_dyadic_class(int(s)) for s in sizes]
    max_cls = max(cls) if n else 0
    blocks: list[list[list[int]]] = []
    for c in range(max_cls, -1, -1):
        members = [j for j in range(n) if cls[j] == c]
        if not members:
            continue
        member_set = set(members)
        chains: list[list[int]] = []
        # chain heads: members whose (unique) predecessor is not in class c
        for j in members:
            preds = dag.predecessors(j)
            if preds and preds[0] in member_set:
                continue
            chain = [j]
            cur = j
            while True:
                nxt = [s for s in dag.successors(cur) if s in member_set]
                if not nxt:
                    break
                # at most one child can share the dyadic class
                assert len(nxt) == 1, "two children in one dyadic class"
                cur = nxt[0]
                chain.append(cur)
            chains.append(chain)
        blocks.append(chains)
    return blocks


# ----------------------------------------------------------------------
# Mixed-forest construction (greedy peeling)
# ----------------------------------------------------------------------
def _decompose_greedy(dag: PrecedenceDAG) -> list[list[list[int]]]:
    """Greedy peeling for arbitrary forest DAGs.

    Repeatedly form a block from maximal chains grown out of the
    currently-minimal vertices (all predecessors already peeled), following
    single outgoing edges whose heads have no other unpeeled predecessor.
    Each block's chains are vertex-disjoint directed paths, and every
    remaining vertex has an ancestor inside the current block or earlier,
    so condition (ii) holds with strict block ordering.
    """
    n = dag.n
    remaining = set(range(n))
    unpeeled_preds = {j: set(dag.predecessors(j)) for j in range(n)}
    blocks: list[list[list[int]]] = []
    while remaining:
        heads = sorted(j for j in remaining if not unpeeled_preds[j])
        block: list[list[int]] = []
        in_block: set[int] = set()
        for h in heads:
            if h in in_block:
                continue
            chain = [h]
            in_block.add(h)
            cur = h
            while True:
                # extend through the unique successor whose only unpeeled
                # predecessor is `cur` itself
                candidates = [
                    s
                    for s in dag.successors(cur)
                    if s in remaining
                    and s not in in_block
                    and unpeeled_preds[s] <= {cur}
                ]
                if len(candidates) != 1:
                    break
                nxt = candidates[0]
                # in a forest `nxt` has no other in-block predecessor, but
                # make sure no *other* chain in this block could also claim
                # it (possible when cur has several successors).
                chain.append(nxt)
                in_block.add(nxt)
                cur = nxt
            block.append(chain)
        blocks.append(block)
        for chain in block:
            for j in chain:
                remaining.discard(j)
                for s in dag.successors(j):
                    unpeeled_preds[s].discard(j)
    return blocks


def decompose_forest(dag: PrecedenceDAG) -> ChainDecomposition:
    """Chain-decompose a forest DAG (Lemma 4.6).

    Dispatches on the DAG class: dyadic construction for out-forests (and,
    via edge reversal, in-forests), greedy peeling for mixed forests.
    The result is always validated; width relative to the Lemma 4.6 bound
    is the caller's concern (experiment E12 measures it).
    """
    cls = dag.classify()
    if cls == DagClass.GENERAL:
        raise UnsupportedDagError(
            "chain decomposition requires the underlying graph to be a forest"
        )
    if cls == DagClass.INDEPENDENT:
        blocks = [[[j] for j in range(dag.n)]] if dag.n else []
        deco = ChainDecomposition(dag, blocks)
    elif cls == DagClass.CHAINS:
        deco = ChainDecomposition(dag, [dag.chains()] if dag.n else [])
    elif cls == DagClass.OUT_FOREST:
        deco = ChainDecomposition(dag, _decompose_out_forest(dag))
    elif cls == DagClass.IN_FOREST:
        # Decompose the reversed (out-)forest, then reverse every chain and
        # the block order: ancestors in the original are descendants in the
        # reverse, so reversing the block order restores condition (ii).
        rev = dag.reversed()
        rev_blocks = _decompose_out_forest(rev)
        blocks = [
            [list(reversed(chain)) for chain in block]
            for block in reversed(rev_blocks)
        ]
        deco = ChainDecomposition(dag, blocks)
    else:  # MIXED_FOREST
        deco = ChainDecomposition(dag, _decompose_greedy(dag))
    deco.validate()
    return deco

"""Exact expected makespan via the Markov chain over unfinished sets.

Figure 1 (left) of the paper depicts a regimen as a Markov chain whose
states are the subsets of unfinished jobs.  For small ``n`` we can compute
expected makespans *exactly* by dynamic programming over that chain:
transitions only remove jobs, so processing states in order of increasing
popcount solves the chain without any linear-system machinery — except for
self-loops, handled in closed form.

Two schedule shapes are supported:

* :class:`~repro.core.schedule.Regimen` (assignment depends on the state
  only): ``E[S] = (1 + sum_{S' ⊊ S} P(S→S') E[S']) / (1 - P(S→S))``.
* :class:`~repro.core.schedule.CyclicSchedule` (assignment depends on the
  step only): states are ``(S, τ)`` pairs with ``τ`` a position in the
  prefix+cycle; for fixed ``S`` the positions form a "rho" shape whose
  cycle part is a cyclic linear recurrence solved in closed form.

Both are exponential in ``n`` and guarded by ``max_states``, which caps
the **full** DP allocation ``2^n × width`` (``width`` = schedule positions
or horizon steps), not just the subset count.

This module is a thin facade over :mod:`repro.sim.exact`.  Every solver
takes ``engine="sparse"`` (default — the vectorized layer-at-a-time
engine, practical to n ≈ 18–20 for regimens) or ``engine="scalar"`` (the
original per-state dict DP, kept as the golden reference; the two agree
to ≤1e-9, property-tested).  The per-state primitives
:func:`eligible_bitmask` and :func:`transition_distribution` are
re-exported unchanged for the Malewicz DP and the execution tree.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .._deprecation import warn_legacy
from ..core.instance import SUUInstance
from ..core.schedule import CyclicSchedule, Regimen
from ..errors import ValidationError
from .exact import scalar as _scalar, sparse as _sparse
from .exact.lattice import DEFAULT_MAX_STATES as _DEFAULT_MAX_STATES
from .exact.scalar import eligible_bitmask, transition_distribution

__all__ = [
    "expected_makespan_regimen",
    "expected_makespan_cyclic",
    "state_distribution",
    "exact_completion_curve",
    "transition_distribution",
    "eligible_bitmask",
    "EXACT_ENGINES",
]

#: Names accepted by the ``engine=`` argument of every solver here.
EXACT_ENGINES = ("sparse", "scalar")

_MODULES = {"sparse": _sparse, "scalar": _scalar}


def _engine(name: str):
    try:
        return _MODULES[name]
    except KeyError:
        raise ValidationError(
            f"unknown exact engine {name!r}; expected one of {EXACT_ENGINES}"
        ) from None


def _expected_makespan_regimen(
    instance: SUUInstance,
    regimen: Regimen,
    max_states: int = _DEFAULT_MAX_STATES,
    engine: str = "sparse",
) -> float:
    """Exact expected makespan of ``regimen`` started from "all unfinished".

    Raises :class:`~repro.errors.ScheduleError` if from some reachable
    state the regimen makes no progress (expected makespan would be
    infinite), and :class:`~repro.errors.ExactSolverLimitError` when
    ``2^n`` exceeds ``max_states``.
    """
    with obs.span("exact.solve", op="makespan_regimen", engine=engine, n=instance.n):
        return _engine(engine).expected_makespan_regimen(
            instance, regimen, max_states=max_states
        )


def _expected_makespan_cyclic(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    max_states: int = _DEFAULT_MAX_STATES,
    engine: str = "sparse",
) -> float:
    """Exact expected makespan of a prefix+cycle oblivious schedule.

    The chain's states are ``(S, τ)`` pairs, so the ``max_states`` guard
    covers ``2^n × (P + L)`` entries.  See the engine modules for the
    recurrence and the rho-shape closed form.
    """
    with obs.span("exact.solve", op="makespan_cyclic", engine=engine, n=instance.n):
        return _engine(engine).expected_makespan_cyclic(
            instance, schedule, max_states=max_states
        )


def _state_distribution(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    horizon: int,
    max_states: int = _DEFAULT_MAX_STATES,
    engine: str = "sparse",
) -> np.ndarray:
    """Exact distribution over unfinished-sets after each step.

    Returns an ``(horizon + 1, 2^n)`` array: row ``t`` is the probability
    distribution of the unfinished set after ``t`` steps under the cyclic
    schedule (row 0 is the point mass on "all unfinished").  The
    ``max_states`` guard covers the full ``2^n × (horizon + 1)``
    allocation.
    """
    with obs.span(
        "exact.solve", op="state_distribution", engine=engine, n=instance.n
    ):
        return _engine(engine).state_distribution(
            instance, schedule, horizon, max_states=max_states
        )


def _exact_completion_curve(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    horizon: int,
    max_states: int = _DEFAULT_MAX_STATES,
    engine: str = "sparse",
) -> np.ndarray:
    """Exact ``Pr[all jobs done by step t]`` for ``t = 1..horizon``.

    The exact counterpart of :func:`repro.sim.montecarlo.completion_curve`,
    usable for small ``n``; the two agree to sampling error (tested).
    """
    with obs.span(
        "exact.solve", op="completion_curve", engine=engine, n=instance.n
    ):
        return _engine(engine).exact_completion_curve(
            instance, schedule, horizon, max_states=max_states
        )

# ----------------------------------------------------------------------
# Deprecated public shims — external callers only.  First-party code goes
# through repro.evaluate.evaluate() (mode="exact"), which delegates to the
# private implementations above unchanged.
# ----------------------------------------------------------------------
def expected_makespan_regimen(
    instance: SUUInstance,
    regimen: Regimen,
    max_states: int = _DEFAULT_MAX_STATES,
    engine: str = "sparse",
) -> float:
    """Deprecated shim over :func:`_expected_makespan_regimen`.

    Use ``repro.evaluate.evaluate(instance, regimen, mode="exact")`` — the
    report's ``makespan`` matches this value to machine precision and the
    auto mode applies the same ``max_states`` guard.
    """
    warn_legacy("repro.sim.expected_makespan_regimen")
    return _expected_makespan_regimen(
        instance, regimen, max_states=max_states, engine=engine
    )


def expected_makespan_cyclic(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    max_states: int = _DEFAULT_MAX_STATES,
    engine: str = "sparse",
) -> float:
    """Deprecated shim over :func:`_expected_makespan_cyclic`.

    Use ``repro.evaluate.evaluate(instance, schedule, mode="exact")``.
    """
    warn_legacy("repro.sim.expected_makespan_cyclic")
    return _expected_makespan_cyclic(
        instance, schedule, max_states=max_states, engine=engine
    )


def state_distribution(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    horizon: int,
    max_states: int = _DEFAULT_MAX_STATES,
    engine: str = "sparse",
) -> np.ndarray:
    """Deprecated shim over :func:`_state_distribution`.

    Use ``repro.evaluate.evaluate(instance, schedule,
    metrics="state_distribution", horizon=T)``.
    """
    warn_legacy("repro.sim.state_distribution")
    return _state_distribution(
        instance, schedule, horizon, max_states=max_states, engine=engine
    )


def exact_completion_curve(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    horizon: int,
    max_states: int = _DEFAULT_MAX_STATES,
    engine: str = "sparse",
) -> np.ndarray:
    """Deprecated shim over :func:`_exact_completion_curve`.

    Use ``repro.evaluate.evaluate(instance, schedule, mode="exact",
    metrics="completion_curve", horizon=T)``.
    """
    warn_legacy("repro.sim.exact_completion_curve")
    return _exact_completion_curve(
        instance, schedule, horizon, max_states=max_states, engine=engine
    )

"""Monte Carlo estimation of expected makespan.

For oblivious (and cyclic) schedules all replications share the same
assignment per step, so the whole replication batch advances in lockstep
with numpy array operations — per the hpc-parallel guide, the hot loop is
over *steps* only, never over replications or jobs.  Deterministic adaptive
policies and regimens run on the frontier-memoized batched engine
(:mod:`repro.sim.batch`); randomized policies fall back to the scalar
engine one replication at a time.  ``docs/architecture.md`` documents the
decision tree, and ``engine="scalar"``/``"batched"`` forces a path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import obs
from .._deprecation import warn_legacy
from .._util import as_rng
from ..core.instance import SUUInstance
from ..core.mass import assignment_success_prob
from ..core.schedule import CyclicSchedule, ObliviousSchedule
from ..errors import SimulationLimitError, ValidationError, warn_censored
from .batch import batchable, simulate_batch
from .engine import DEFAULT_MAX_STEPS, simulate

__all__ = ["MakespanEstimate", "estimate_makespan", "completion_curve"]


@dataclass
class MakespanEstimate:
    """Sample statistics of the makespan under repeated execution.

    ``truncated`` counts replications that hit the step budget before
    finishing; their (censored) makespans are included in the mean, so when
    ``truncated > 0`` the mean is a *lower* bound on the true expectation
    and callers should enlarge ``max_steps``.
    :func:`estimate_makespan` emits a :class:`~repro.errors.CensoredEstimateWarning`
    whenever that happens, so a biased mean cannot be read silently; pass
    ``require_finished=True`` to escalate censoring to an error instead.
    """

    mean: float
    std_err: float
    n_reps: int
    truncated: int
    min: float
    max: float
    samples: np.ndarray | None = None
    #: Which simulation path produced the samples:
    #: "oblivious-lockstep" | "batched" | "scalar".
    engine_used: str = "scalar"

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.std_err
        return (self.mean - half, self.mean + half)

    def __repr__(self) -> str:
        lo, hi = self.ci95
        extra = f", truncated={self.truncated}" if self.truncated else ""
        return (
            f"MakespanEstimate(mean={self.mean:.3f}, ci95=({lo:.3f}, {hi:.3f}), "
            f"reps={self.n_reps}{extra})"
        )


def _per_step_success(instance: SUUInstance, table: np.ndarray) -> np.ndarray:
    """Per-step per-job one-step success probabilities for a schedule table.

    Entry ``(t, j)``: probability job ``j`` completes in step ``t`` given it
    is eligible and unfinished and the step-``t`` assignment is applied.
    """
    T = table.shape[0]
    out = np.empty((T, instance.n), dtype=np.float64)
    for t in range(T):
        out[t] = assignment_success_prob(instance.p, table[t])
    return out


def _vectorized_oblivious(
    instance: SUUInstance,
    schedule: ObliviousSchedule | CyclicSchedule,
    reps: int,
    rng: np.random.Generator,
    max_steps: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate ``reps`` executions in lockstep.

    Returns ``(makespans, finished_flags)``; unfinished runs report the
    censored step count ``max_steps``.
    """
    n = instance.n
    dag = instance.dag
    # Predecessor-count bookkeeping for eligibility, vectorized across reps.
    pred_lists = [dag.predecessors(j) for j in range(n)]
    pred_counts = np.array([len(pl) for pl in pred_lists], dtype=np.int64)
    has_preds = pred_counts > 0
    # (n_pred_edges,) flattened predecessor incidence for a fast gather:
    # finished[:, pred_src] summed per job via matmul with a sparse-ish
    # 0/1 matrix.  n is small enough that a dense (n, n) matrix is fine.
    pred_matrix = np.zeros((n, n), dtype=np.float64)
    for j, pl in enumerate(pred_lists):
        for u in pl:
            pred_matrix[u, j] = 1.0

    if isinstance(schedule, ObliviousSchedule):
        prefix_q = _per_step_success(instance, schedule.table)
        cycle_q = None
        prefix_len = schedule.length
    else:
        prefix_q = _per_step_success(instance, schedule.prefix.table)
        cycle_q = _per_step_success(instance, schedule.cycle.table)
        prefix_len = schedule.prefix_length

    finished = np.zeros((reps, n), dtype=bool)
    makespan = np.full(reps, max_steps, dtype=np.int64)
    done_reps = np.zeros(reps, dtype=bool)

    horizon = max_steps
    if isinstance(schedule, ObliviousSchedule):
        horizon = min(max_steps, schedule.length)

    for t in range(horizon):
        if done_reps.all():
            break
        if t < prefix_len:
            q = prefix_q[t]
        elif cycle_q is not None:
            q = cycle_q[(t - prefix_len) % cycle_q.shape[0]]
        else:  # pragma: no cover - loop bound prevents this
            break
        if not q.any():
            continue
        # Eligibility: all predecessors finished.
        if has_preds.any():
            finished_pred_count = finished.astype(np.float64) @ pred_matrix
            eligible = finished_pred_count >= pred_counts[None, :]
        else:
            eligible = np.ones((reps, n), dtype=bool)
        attempt = (~finished) & eligible & (q[None, :] > 0)
        if not attempt.any():
            continue
        draws = rng.random((reps, n))
        newly = attempt & (draws < q[None, :])
        finished |= newly
        just_done = (~done_reps) & finished.all(axis=1)
        makespan[just_done] = t + 1
        done_reps |= just_done
    return makespan, done_reps


def _estimate_makespan(
    instance: SUUInstance,
    schedule,
    reps: int = 200,
    rng: np.random.Generator | int | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    keep_samples: bool = False,
    require_finished: bool = False,
    engine: str = "auto",
    workers: int | None = None,
    executor=None,
    shards: int | None = None,
    _warn_stacklevel: int = 2,
) -> MakespanEstimate:
    """Estimate the expected makespan of ``schedule`` by Monte Carlo.

    Engine-layer implementation; first-party callers go through
    :func:`repro.evaluate.evaluate` (mode ``"mc"``), which delegates here
    unchanged — same streams, bitwise-identical samples at a fixed seed.
    ``_warn_stacklevel`` keeps the censoring warning attributed to the
    real caller when an extra frame (the public shim) sits in between.

    With ``engine="auto"`` (see ``docs/architecture.md``): oblivious and
    cyclic schedules use the vectorized lockstep path; deterministic
    adaptive policies and regimens use the batched frontier-memoized
    engine; randomized policies and anything else run through the scalar
    engine one replication at a time.  ``engine="scalar"`` forces the
    scalar reference engine for every schedule type; ``engine="batched"``
    forces :func:`repro.sim.batch.simulate_batch` (rejecting schedules it
    cannot batch).

    ``workers`` / ``executor`` / ``shards`` engage the sharded parallel
    backend (:mod:`repro.parallel`): replications split into independent
    :meth:`~numpy.random.SeedSequence.spawn`-seeded shards, each shard runs
    through this same engine routing, and per-shard moments merge into one
    estimate.  ``workers=N`` fans shards out to ``N`` worker processes
    (``executor="serial"`` runs the same shards in-process); the merged
    numbers are identical for every worker count at a fixed seed.  The
    sharded path draws its shard streams from a root seed, so it is
    statistically equivalent — not bitwise identical — to the default
    single-stream path.  Process execution ships ``(instance, schedule)``
    by pickle; closure-based adaptive policies must instead go through an
    :class:`~repro.experiments.spec.ExperimentSpec` (whose workers rebuild
    the schedule from the registry) or ``executor="serial"``.

    When any replication is censored at the step budget, a
    :class:`~repro.errors.CensoredEstimateWarning` is emitted (the mean is
    then only a lower bound); ``require_finished=True`` raises instead.
    """
    if reps < 1:
        raise ValidationError(f"reps must be >= 1, got {reps}")
    if engine not in ("auto", "batched", "scalar"):
        raise ValidationError(f"unknown engine {engine!r}; expected auto|batched|scalar")
    if workers is not None or executor is not None or shards is not None:
        # Imported lazily: repro.parallel.worker calls back into this module.
        from ..parallel.estimate import sharded_estimate

        return sharded_estimate(
            instance,
            schedule,
            reps=reps,
            rng=rng,
            max_steps=max_steps,
            engine=engine,
            executor=executor,
            workers=workers,
            shards=shards,
            keep_samples=keep_samples,
            require_finished=require_finished,
        )
    rng = as_rng(rng)
    if isinstance(schedule, (ObliviousSchedule, CyclicSchedule)):
        # Validate regardless of engine choice: the scalar loop would
        # otherwise fail deep inside with a raw IndexError.
        schedule.validate_against(instance)
    if engine == "auto" and isinstance(schedule, (ObliviousSchedule, CyclicSchedule)):
        engine_used = "oblivious-lockstep"
        with obs.span("mc.engine", engine=engine_used, reps=reps):
            samples, finished_flags = _vectorized_oblivious(
                instance, schedule, reps, rng, max_steps
            )
        truncated = int((~finished_flags).sum())
    elif engine == "batched" or (engine == "auto" and batchable(schedule)):
        engine_used = "batched"
        with obs.span("mc.engine", engine=engine_used, reps=reps):
            batch = simulate_batch(
                instance, schedule, reps, rng=rng, max_steps=max_steps
            )
        samples = batch.makespans
        truncated = batch.truncated
    else:
        engine_used = "scalar"
        with obs.span("mc.engine", engine=engine_used, reps=reps):
            samples = np.empty(reps, dtype=np.int64)
            truncated = 0
            for r in range(reps):
                res = simulate(instance, schedule, rng=rng, max_steps=max_steps)
                if res.finished:
                    samples[r] = res.makespan
                else:
                    samples[r] = max_steps
                    truncated += 1
    obs.add("mc.reps", reps)
    obs.add("mc.truncated", truncated)
    if require_finished and truncated:
        raise SimulationLimitError(
            f"{truncated}/{reps} replications hit the {max_steps}-step budget"
        )
    if truncated:
        warn_censored(truncated, reps, max_steps, stacklevel=_warn_stacklevel)
    values = samples.astype(np.float64)
    mean = float(values.mean())
    std_err = float(values.std(ddof=1) / math.sqrt(reps)) if reps > 1 else 0.0
    return MakespanEstimate(
        mean=mean,
        std_err=std_err,
        n_reps=reps,
        truncated=truncated,
        min=float(values.min()),
        max=float(values.max()),
        samples=samples if keep_samples else None,
        engine_used=engine_used,
    )


def estimate_makespan(
    instance: SUUInstance,
    schedule,
    reps: int = 200,
    rng: np.random.Generator | int | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    keep_samples: bool = False,
    require_finished: bool = False,
    engine: str = "auto",
    workers: int | None = None,
    executor=None,
    shards: int | None = None,
) -> MakespanEstimate:
    """Deprecated shim over :func:`_estimate_makespan`.

    Use :func:`repro.evaluate.evaluate` — ``evaluate(instance, schedule,
    mode="mc", seed=s)`` returns bitwise-identical samples plus engine
    provenance, and ``mode="auto"`` upgrades small regimen/cyclic cases
    to the exact Markov answer for free.
    """
    warn_legacy("repro.sim.estimate_makespan")
    return _estimate_makespan(
        instance,
        schedule,
        reps=reps,
        rng=rng,
        max_steps=max_steps,
        keep_samples=keep_samples,
        require_finished=require_finished,
        engine=engine,
        workers=workers,
        executor=executor,
        shards=shards,
        _warn_stacklevel=3,  # skip this shim frame: blame the caller's line
    )


def censored_completion_cdf(
    samples: np.ndarray, truncated: int, horizon: int
) -> np.ndarray:
    """Empirical completion CDF from makespan samples (1-based steps).

    The one implementation of the censoring-aware arithmetic, shared by
    :func:`_completion_curve` and the evaluation front door so the two
    stay bitwise identical: replications censored at the budget sit at
    ``horizon`` only because observation stopped there, so they are
    subtracted from the final bin and the last point reports the
    *finished* fraction.
    """
    counts = np.bincount(samples, minlength=horizon + 1)[1:]
    counts[horizon - 1] -= truncated
    return np.cumsum(counts, dtype=np.float64) / samples.size


def _completion_curve(
    instance: SUUInstance,
    schedule,
    reps: int = 200,
    rng: np.random.Generator | int | None = None,
    max_steps: int = 10_000,
) -> np.ndarray:
    """Empirical ``Pr[all jobs done by step t]`` for ``t = 1..max_steps``.

    Returns an array of length ``max_steps``; useful for plotting the
    completion CDF of competing schedules.

    Replications censored at the step budget are *not done* at any
    ``t <= max_steps`` — their samples sit at ``max_steps`` only because
    that is where observation stopped — so the final point reports the
    finished fraction, not 1.0.  (A run that genuinely finishes in step
    ``max_steps`` still counts there; the two are distinguished by the
    estimate's ``truncated`` counter, which only covers unfinished runs.)
    """
    if max_steps < 1:
        raise ValidationError("completion_curve needs max_steps >= 1")
    rng = as_rng(rng)
    est = _estimate_makespan(
        instance, schedule, reps=reps, rng=rng, max_steps=max_steps, keep_samples=True
    )
    assert est.samples is not None
    return censored_completion_cdf(est.samples, est.truncated, max_steps)


def completion_curve(
    instance: SUUInstance,
    schedule,
    reps: int = 200,
    rng: np.random.Generator | int | None = None,
    max_steps: int = 10_000,
) -> np.ndarray:
    """Deprecated shim over :func:`_completion_curve`.

    Use ``repro.evaluate.evaluate(instance, schedule, mode="mc",
    metrics="completion_curve", horizon=T, seed=s)`` — the returned
    report's ``completion_curve`` is bitwise identical at the same seed.
    """
    warn_legacy("repro.sim.completion_curve")
    return _completion_curve(
        instance, schedule, reps=reps, rng=rng, max_steps=max_steps
    )

"""Exact analytic layer: the Figure-1 Markov chain, two engines.

* :mod:`.sparse` — vectorized CSR/layered-sweep solvers (the default);
* :mod:`.scalar` — the original per-state dict DP, kept as the golden
  reference behind ``engine="scalar"``;
* :mod:`.lattice` — the shared vectorized subset-lattice structure.

Use the :mod:`repro.sim.markov` facade unless you need an engine module
directly; the facade routes on its ``engine=`` argument and re-exports
the scalar per-state primitives used by the Malewicz DP and the
execution tree.
"""

from .lattice import (
    DEFAULT_MAX_STATES,
    TransitionBlock,
    build_regimen_structure,
    build_step_structure,
    check_state_budget,
    eligibility_masks,
    popcount_array,
)
from . import scalar, sparse

__all__ = [
    "DEFAULT_MAX_STATES",
    "TransitionBlock",
    "build_regimen_structure",
    "build_step_structure",
    "check_state_budget",
    "eligibility_masks",
    "popcount_array",
    "scalar",
    "sparse",
]

"""Vectorized subset-lattice structure shared by the sparse exact solvers.

The Figure-1 Markov chain lives on the lattice of unfinished-job subsets:
state ``S`` is a bitmask, transitions only *remove* jobs, and the jobs that
can leave in one step are the *active* ones — eligible (no unfinished
predecessor) **and** served by a machine with positive success probability.
This module turns that structure into flat NumPy arrays once, so the
solvers in :mod:`repro.sim.exact.sparse` can sweep the chain one popcount
layer at a time without any per-state Python:

* :func:`eligibility_masks` — the eligible-set bitmask of every state, as
  one ``(2^n,)`` int64 array (``n`` vectorized passes over the lattice).
* :class:`TransitionBlock` — all states with the same *active count* ``k``
  under one assignment rule, stored CSR-style: ``states`` sorted by
  popcount with a ``layer_ptr`` row pointer, and per state the ``2^k``
  completion subsets as XOR ``deltas`` plus their product-measure
  ``weights`` (column 0 is the empty subset — the self-loop probability).
* :func:`build_step_structure` / :func:`build_regimen_structure` — group
  the whole lattice into blocks for one oblivious assignment (shared ``q``
  vector) or a per-state regimen table (per-state ``q`` via a machine
  sweep, the "assignment signature" of each state).

Because a job set can only shrink, ``S XOR delta`` always lands in a
strictly lower layer (for ``delta != 0``), which is what makes the
layer-at-a-time backward sweep well-founded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.instance import SUUInstance
from ...errors import ExactSolverLimitError

__all__ = [
    "DEFAULT_MAX_STATES",
    "check_state_budget",
    "popcount_array",
    "eligibility_masks",
    "assignment_success",
    "TransitionBlock",
    "build_step_structure",
    "build_regimen_structure",
]

#: Default cap on the number of DP entries an exact solver may allocate
#: (``2^n`` states times the number of schedule positions / time steps).
#: At float64 this is a 32 MiB table — regimens up to n ≈ 20–22 and cyclic
#: schedules up to n ≈ 14–16 with short periods fit comfortably.
DEFAULT_MAX_STATES = 1 << 22


def check_state_budget(n: int, width: int, max_states: int) -> None:
    """Guard the *full* DP allocation, not just the subset count.

    ``width`` is the number of DP entries per unfinished set: 1 for a
    regimen, ``P + L`` for a cyclic schedule (the chain's true states are
    ``(S, τ)`` pairs), ``horizon + 1`` for the forward state distribution.
    The pre-fix guard only checked ``2^n <= max_states``, so a long cycle
    or horizon could pass the guard and still exhaust memory.
    """
    if n > 62:
        raise ExactSolverLimitError(f"bitmask solver limited to 62 jobs, got {n}")
    width = max(int(width), 1)
    total = (1 << n) * width
    if total > max_states:
        shape = f"2^{n}" if width == 1 else f"2^{n} x {width}"
        raise ExactSolverLimitError(
            f"exact Markov solver would need {shape} = {total} states "
            f"(limit {max_states}); use Monte Carlo instead"
        )


def _check_structure_budget(karr: np.ndarray, max_states: int) -> None:
    """Guard the transient subset tables, the sparse engine's own footprint.

    Each state's block row holds ``2^k`` completion subsets (``k`` = its
    active-job count, up to ``m``), so the structure is ``Σ_S 2^{k(S)}``
    entries — independent of the DP-table size the ``max_states`` guard
    covers, and the dominant allocation when many jobs are active at
    once.  The budget is ``8 × max_states`` (tables are transient and of
    the same order as the DP table at typical ``m``); past it, the scalar
    engine — whose per-state dicts are transient — is the right tool.
    """
    entries = int(np.sum(np.left_shift(np.int64(1), karr)))
    limit = 8 * int(max_states)
    if entries > limit:
        raise ExactSolverLimitError(
            f"sparse transition structure would need {entries} subset-table "
            f"entries (limit {limit} = 8 x max_states); too many jobs are "
            'active per state — use engine="scalar" or raise max_states'
        )


_POPCOUNT_LUT: np.ndarray | None = None


def popcount_array(x: np.ndarray) -> np.ndarray:
    """Per-element popcount of an int64 array."""
    x = np.asarray(x, dtype=np.int64)
    if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
        return np.bitwise_count(x).astype(np.int64)
    global _POPCOUNT_LUT  # pragma: no cover - NumPy < 2.0 fallback
    if _POPCOUNT_LUT is None:  # pragma: no cover
        _POPCOUNT_LUT = np.array(
            [bin(i).count("1") for i in range(1 << 16)], dtype=np.int64
        )
    out = np.zeros_like(x)  # pragma: no cover
    for shift in (0, 16, 32, 48):  # pragma: no cover
        out += _POPCOUNT_LUT[(x >> shift) & 0xFFFF]
    return out  # pragma: no cover


def eligibility_masks(instance: SUUInstance) -> np.ndarray:
    """Eligible-job bitmask for every unfinished set, as a ``(2^n,)`` array.

    Vectorized counterpart of :func:`repro.sim.markov.eligible_bitmask`:
    job ``j`` is eligible in state ``S`` iff it is unfinished and none of
    its predecessors is (``S & pred_mask(j) == 0``).
    """
    n = instance.n
    states = np.arange(1 << n, dtype=np.int64)
    elig = np.zeros(1 << n, dtype=np.int64)
    for j in range(n):
        ok = ((states >> j) & 1).astype(bool)
        pm = instance.dag.pred_mask(j)
        if pm:
            ok &= (states & pm) == 0
        elig[ok] |= 1 << j
    return elig


def assignment_success(
    p: np.ndarray, assignment: np.ndarray
) -> tuple[np.ndarray, int]:
    """``(q, served_mask)`` for one assignment vector.

    ``q[j] = 1 - prod_{i: a_i = j} (1 - p_ij)`` is job ``j``'s one-step
    success probability when eligible; ``served_mask`` has a bit for every
    job with ``q > 0`` (jobs with zero probability can never leave a state
    and are treated exactly like unassigned ones, matching the scalar
    engine's ``_per_job_success``).
    """
    m, n = p.shape
    fail = np.ones(n, dtype=np.float64)
    for i in range(m):
        j = int(assignment[i])
        if j >= 0:
            fail[j] *= 1.0 - p[i, j]
    q = 1.0 - fail
    served = 0
    for j in np.flatnonzero(q > 0.0):
        served |= 1 << int(j)
    return q, served


@dataclass(frozen=True)
class TransitionBlock:
    """All states with the same active count ``k`` under one step rule.

    ``states`` is sorted by popcount (CSR rows via ``layer_ptr``); columns
    of ``deltas``/``weights`` enumerate the ``2^k`` completion subsets of
    each state's active set.  Column 0 is always the empty subset:
    ``deltas[:, 0] == 0`` and ``weights[:, 0]`` is the self-loop (stay)
    probability.  Rows of ``weights`` sum to 1 (a product measure).
    """

    states: np.ndarray
    deltas: np.ndarray
    weights: np.ndarray
    layer_ptr: np.ndarray

    @property
    def k(self) -> int:
        """Active jobs per state (``deltas`` has ``2^k`` columns)."""
        return int(self.deltas.shape[1]).bit_length() - 1

    def layer(self, c: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The block's rows for popcount layer ``c`` (may be empty)."""
        lo, hi = self.layer_ptr[c], self.layer_ptr[c + 1]
        return self.states[lo:hi], self.deltas[lo:hi], self.weights[lo:hi]


def _make_block(
    sel: np.ndarray, bits: np.ndarray, qbits: np.ndarray, pc: np.ndarray, n: int
) -> TransitionBlock:
    """Assemble one block from per-state active-bit positions and probs."""
    order = np.argsort(pc[sel], kind="stable")
    sel = sel[order]
    bits = bits[order]
    qbits = qbits[order]
    k = bits.shape[1]
    # Membership table of the 2^k subsets: incl[t, b] = bit b in subset t.
    incl = ((np.arange(1 << k)[:, None] >> np.arange(k)[None, :]) & 1).astype(bool)
    deltas = (np.left_shift(np.int64(1), bits)) @ incl.T.astype(np.int64)
    weights = np.ones((sel.size, 1 << k), dtype=np.float64)
    for b in range(k):
        qb = qbits[:, b : b + 1]
        weights *= np.where(incl[:, b][None, :], qb, 1.0 - qb)
    layer_ptr = np.searchsorted(pc[sel], np.arange(n + 2))
    return TransitionBlock(sel, deltas, weights, layer_ptr)


def _bit_positions(act: np.ndarray, k: int, n: int) -> np.ndarray:
    """``(G, k)`` column positions of the set bits of each mask in ``act``."""
    if k == 0:
        return np.zeros((act.size, 0), dtype=np.int64)
    bitmat = ((act[:, None] >> np.arange(n, dtype=np.int64)[None, :]) & 1).astype(bool)
    return np.nonzero(bitmat)[1].reshape(act.size, k)


def build_step_structure(
    instance: SUUInstance,
    assignment: np.ndarray,
    elig: np.ndarray,
    pc: np.ndarray,
    max_states: int = DEFAULT_MAX_STATES,
) -> list[TransitionBlock]:
    """Transition blocks of the whole lattice under one oblivious step.

    All states share the assignment's ``q`` vector; they are grouped by
    active count ``k`` so each group has a rectangular ``(G, 2^k)``
    subset table.  States with ``k = 0`` (nothing progresses, including
    the absorbing empty state) form the ``2^0``-column block.
    """
    n = instance.n
    q, served = assignment_success(instance.p, assignment)
    act = elig & served
    karr = popcount_array(act)
    _check_structure_budget(karr, max_states)
    states = np.arange(1 << n, dtype=np.int64)
    blocks = []
    for kk in np.unique(karr):
        sel = states[karr == kk]
        bits = _bit_positions(act[sel], int(kk), n)
        qbits = q[bits] if kk else np.zeros((sel.size, 0), dtype=np.float64)
        blocks.append(_make_block(sel, bits, qbits, pc, n))
    return blocks


def build_regimen_structure(
    instance: SUUInstance,
    table: np.ndarray,
    elig: np.ndarray,
    pc: np.ndarray,
    max_states: int = DEFAULT_MAX_STATES,
) -> list[TransitionBlock]:
    """Transition blocks for a per-state assignment table (a regimen).

    ``table`` is the ``(2^n, m)`` materialized regimen (row ``S`` is the
    assignment in state ``S``; row 0 is ignored).  Unlike the oblivious
    case there is no shared ``q`` vector, so per-state success
    probabilities are accumulated with one vectorized sweep per machine:
    machine ``i`` contributes ``1 - p[i, j]`` to the failure product of
    the active bit it points at, per state.
    """
    p = instance.p
    n, m = instance.n, instance.m
    size = 1 << n
    states = np.arange(size, dtype=np.int64)
    served = np.zeros(size, dtype=np.int64)
    for i in range(m):
        j = table[:, i].astype(np.int64)
        jn = np.maximum(j, 0)
        positive = (j >= 0) & (p[i, jn] > 0.0)
        served |= np.where(positive, np.left_shift(np.int64(1), jn), np.int64(0))
    act = elig & served
    act[0] = 0
    karr = popcount_array(act)
    _check_structure_budget(karr, max_states)
    blocks = []
    for kk in np.unique(karr):
        sel = states[karr == kk]
        bits = _bit_positions(act[sel], int(kk), n)
        if kk:
            failb = np.ones((sel.size, kk), dtype=np.float64)
            for i in range(m):
                j = table[sel, i].astype(np.int64)
                failb *= np.where(j[:, None] == bits, 1.0 - p[i, bits], 1.0)
            qbits = 1.0 - failb
        else:
            qbits = np.zeros((sel.size, 0), dtype=np.float64)
        blocks.append(_make_block(sel, bits, qbits, pc, n))
    return blocks

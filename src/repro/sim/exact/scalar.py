"""Scalar (dict-of-dicts) exact Markov solvers — the golden reference.

This is the original pure-Python implementation of the Figure-1
subset-lattice DP, kept verbatim as the executable specification of the
vectorized engine in :mod:`repro.sim.exact.sparse`: every solver here is
one state at a time, one transition dict at a time, with no clever
layout — easy to audit against the paper, slow past n ≈ 12.  Reach it
through the :mod:`repro.sim.markov` facade with ``engine="scalar"``;
equivalence with the sparse engine to ≤1e-9 is property-tested in
``tests/sim/test_exact_engines_equiv.py``.

The per-state primitives (:func:`eligible_bitmask`,
:func:`transition_distribution`) also serve the Malewicz DP
(:mod:`repro.opt.malewicz`) and the execution tree
(:mod:`repro.sim.exec_tree`), which enumerate single states anyway.
"""

from __future__ import annotations

import numpy as np

from ..._util import iterable_from_bitmask
from ...core.instance import SUUInstance
from ...core.schedule import IDLE, CyclicSchedule, Regimen
from ...errors import ScheduleError
from .lattice import DEFAULT_MAX_STATES, check_state_budget

__all__ = [
    "eligible_bitmask",
    "transition_distribution",
    "expected_makespan_regimen",
    "expected_makespan_cyclic",
    "state_distribution",
    "exact_completion_curve",
]


def eligible_bitmask(instance: SUUInstance, state: int) -> int:
    """Bitmask of jobs in ``state`` whose predecessors are all finished.

    ``state`` is the bitmask of *unfinished* jobs; a job is eligible iff it
    is unfinished and none of its predecessors is unfinished.
    """
    dag = instance.dag
    elig = 0
    s = state
    while s:
        j = (s & -s).bit_length() - 1
        if dag.pred_mask(j) & state == 0:
            elig |= 1 << j
        s &= s - 1
    return elig


def _per_job_success(instance: SUUInstance, assignment: np.ndarray, active: int) -> dict[int, float]:
    """Success probability per *active* job under ``assignment``.

    Only jobs in the ``active`` bitmask (eligible and unfinished) receive
    machine work; machines pointing elsewhere idle, per Def 2.1.
    """
    fail: dict[int, float] = {}
    p = instance.p
    for i in range(instance.m):
        j = int(assignment[i])
        if j == IDLE or not (active >> j) & 1:
            continue
        fail[j] = fail.get(j, 1.0) * (1.0 - p[i, j])
    return {j: 1.0 - f for j, f in fail.items() if 1.0 - f > 0.0}


def transition_distribution(
    instance: SUUInstance, state: int, assignment: np.ndarray
) -> dict[int, float]:
    """Exact one-step transition distribution from unfinished-set ``state``.

    Returns ``{next_state: probability}``.  Jobs complete independently, so
    the distribution is the product measure over the assigned eligible jobs.
    """
    active = eligible_bitmask(instance, state)
    q = _per_job_success(instance, assignment, active)
    jobs = sorted(q)
    dist: dict[int, float] = {state: 1.0}
    for j in jobs:
        qj = q[j]
        new: dict[int, float] = {}
        for s, pr in dist.items():
            new[s & ~(1 << j)] = new.get(s & ~(1 << j), 0.0) + pr * qj
            if pr * (1.0 - qj) > 0.0:
                new[s] = new.get(s, 0.0) + pr * (1.0 - qj)
        dist = new
    return dist


def expected_makespan_regimen(
    instance: SUUInstance,
    regimen: Regimen,
    max_states: int = DEFAULT_MAX_STATES,
) -> float:
    """Exact expected makespan of ``regimen`` started from "all unfinished".

    Raises :class:`ScheduleError` if from some reachable state the regimen
    makes no progress (expected makespan would be infinite).
    """
    n = instance.n
    check_state_budget(n, 1, max_states)
    full = (1 << n) - 1
    expect = np.zeros(1 << n, dtype=np.float64)
    # Process states in order of increasing popcount: transitions from S
    # reach only subsets of S.
    states = sorted(range(1 << n), key=lambda s: s.bit_count())
    for state in states:
        if state == 0:
            continue
        a = regimen.assignment_for_state(state)
        dist = transition_distribution(instance, state, a)
        stay = dist.get(state, 0.0)
        if stay >= 1.0 - 1e-15:
            raise ScheduleError(
                f"regimen makes no progress from state "
                f"{iterable_from_bitmask(state)}; expected makespan is infinite"
            )
        acc = 1.0
        for nxt, pr in dist.items():
            if nxt != state:
                acc += pr * expect[nxt]
        expect[state] = acc / (1.0 - stay)
    return float(expect[full])


def expected_makespan_cyclic(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    max_states: int = DEFAULT_MAX_STATES,
) -> float:
    """Exact expected makespan of a prefix+cycle oblivious schedule.

    For each unfinished set ``S`` (increasing popcount) and each schedule
    position ``τ``, ``E[S, τ]`` satisfies::

        E[S, τ] = 1 + Σ_{S' ⊊ S} P_τ(S→S') E[S', next(τ)]
                    + P_τ(S→S) E[S, next(τ)]

    Positions run ``0 .. P+L-1`` where ``P`` is the prefix length and ``L``
    the cycle length; ``next`` advances and wraps the cycle part.  Within a
    fixed ``S``, the cycle positions form a linear recurrence
    ``E_τ = a_τ + b_τ E_{next(τ)}`` around the loop, solved in closed form;
    the prefix is then a backward substitution.

    The total work is ``O(2^n · (P+L) · 2^k)`` with ``k`` the number of
    jobs assigned per step — exact but only for small instances.
    """
    n = instance.n
    schedule.validate_against(instance)
    P = schedule.prefix_length
    L = schedule.cycle_length
    total = P + L
    check_state_budget(n, total, max_states)

    # Transition distributions depend on (state, position) but only through
    # the assignment table; cache per (position, state).
    def dist_at(state: int, tau: int) -> dict[int, float]:
        if tau < P:
            a = schedule.prefix.table[tau]
        else:
            a = schedule.cycle.table[tau - P]
        return transition_distribution(instance, state, a)

    expect = np.zeros((1 << n, total), dtype=np.float64)
    states = sorted(range(1 << n), key=lambda s: s.bit_count())
    for state in states:
        if state == 0:
            continue
        # a_tau = 1 + sum over strictly-smaller successors; b_tau = self-loop.
        a = np.empty(total, dtype=np.float64)
        b = np.empty(total, dtype=np.float64)
        for tau in range(total):
            dist = dist_at(state, tau)
            nxt_tau = tau + 1 if tau + 1 < total else P
            acc = 1.0
            for nxt, pr in dist.items():
                if nxt != state:
                    acc += pr * expect[nxt, nxt_tau]
            a[tau] = acc
            b[tau] = dist.get(state, 0.0)
        # Cycle part: E_P = A + B * E_P with
        # A = a_P + b_P a_{P+1} + b_P b_{P+1} a_{P+2} + ...,  B = prod b.
        # States from which the cycle makes no progress get E = inf; they
        # are tolerated as long as they are unreachable from the full
        # state at time 0 (e.g. a prefix that provably clears them).
        A = 0.0
        B = 1.0
        for off in range(L):
            tau = P + off
            A += B * a[tau]
            B *= b[tau]
        if B >= 1.0 - 1e-15 or not np.isfinite(A):
            e_cycle_start = np.inf
        else:
            e_cycle_start = A / (1.0 - B)

        def step_back(a_tau: float, b_tau: float, e_next: float) -> float:
            # avoid 0 * inf = nan when the next position is a dead state
            if b_tau == 0.0:
                return a_tau
            return a_tau + b_tau * e_next

        expect[state, P + L - 1] = step_back(a[P + L - 1], b[P + L - 1], e_cycle_start)
        for tau in range(P + L - 2, P - 1, -1):
            expect[state, tau] = step_back(a[tau], b[tau], expect[state, tau + 1])
        # Prefix part, backwards.
        for tau in range(P - 1, -1, -1):
            expect[state, tau] = step_back(a[tau], b[tau], expect[state, tau + 1])
    full = (1 << n) - 1
    value = float(expect[full, 0])
    if not np.isfinite(value):
        raise ScheduleError(
            "cyclic schedule makes no progress from some reachable state; "
            "expected makespan is infinite"
        )
    return value


def state_distribution(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    horizon: int,
    max_states: int = DEFAULT_MAX_STATES,
) -> np.ndarray:
    """Exact distribution over unfinished-sets after each step.

    Returns an ``(horizon + 1, 2^n)`` array: row ``t`` is the probability
    distribution of the unfinished set after ``t`` steps under the cyclic
    schedule (row 0 is the point mass on "all unfinished").  Forward
    propagation over the Figure-1 Markov chain; complements the backward
    expected-makespan DP.
    """
    n = instance.n
    check_state_budget(n, horizon + 1, max_states)
    schedule.validate_against(instance)
    dist = np.zeros((horizon + 1, 1 << n), dtype=np.float64)
    dist[0, (1 << n) - 1] = 1.0
    for t in range(horizon):
        a = schedule.assignment_at(t)
        row = dist[t]
        nxt = dist[t + 1]
        for state in np.flatnonzero(row > 0.0):
            state = int(state)
            pr = row[state]
            if state == 0:
                nxt[0] += pr
                continue
            for child, q in transition_distribution(instance, state, a).items():
                nxt[child] += pr * q
    return dist


def exact_completion_curve(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    horizon: int,
    max_states: int = DEFAULT_MAX_STATES,
) -> np.ndarray:
    """Exact ``Pr[all jobs done by step t]`` for ``t = 1..horizon``.

    The exact counterpart of :func:`repro.sim.montecarlo.completion_curve`,
    usable for small ``n``; the two agree to sampling error (tested).
    """
    dist = state_distribution(instance, schedule, horizon, max_states=max_states)
    return dist[1:, 0].copy()

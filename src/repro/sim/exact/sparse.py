"""Vectorized sparse exact-Markov solvers (layer-at-a-time sweeps).

Same math as :mod:`repro.sim.exact.scalar` — the Figure-1 DP over the
subset lattice with closed-form self-loops and rho-shaped cycle solving —
but executed as NumPy sweeps over the CSR-style
:class:`~repro.sim.exact.lattice.TransitionBlock` structure instead of
per-state Python dict loops:

1. the lattice structure (eligibility, active sets, completion-subset
   deltas and weights) is built **once** per assignment rule;
2. states are processed one popcount layer at a time — every XOR target
   of a nonempty completion subset lies in a strictly lower layer, so a
   single gather ``E[S ^ deltas]`` reads only finished values;
3. within a layer, each block solves all its states with one fused
   gather → weighted-sum → divide (regimen) or one rho closed form over
   the schedule positions (cyclic), with no per-state Python at all.

The forward solver (:func:`state_distribution`) reuses the same blocks and
scatters each step with ``np.bincount`` over the XOR targets.

Agreement with the scalar golden reference to ≤1e-9 is property-tested
across all workload families in ``tests/sim/test_exact_engines_equiv.py``;
the measured speedup (≥10× on regimen makespans at n=14) is recorded by
``benchmarks/bench_perf_exact_markov.py``.
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..._util import iterable_from_bitmask
from ...core.instance import SUUInstance
from ...core.schedule import IDLE, CyclicSchedule, Regimen
from ...errors import ScheduleError
from .lattice import (
    DEFAULT_MAX_STATES,
    TransitionBlock,
    build_regimen_structure,
    build_step_structure,
    check_state_budget,
    eligibility_masks,
    popcount_array,
)

__all__ = [
    "expected_makespan_regimen",
    "expected_makespan_cyclic",
    "state_distribution",
    "exact_completion_curve",
]

#: Self-loop probabilities at or above this are treated as "no progress",
#: matching the scalar engine's threshold.
_STAY_EPS = 1e-15


def _materialize_regimen(regimen: Regimen, n: int, m: int) -> np.ndarray:
    """The regimen as a ``(2^n, m)`` table (raises if a state is missing)."""
    size = 1 << n
    table = np.full((size, m), IDLE, dtype=np.int32)
    for state in range(1, size):
        table[state] = regimen.assignment_for_state(state)
    return table


def expected_makespan_regimen(
    instance: SUUInstance,
    regimen: Regimen,
    max_states: int = DEFAULT_MAX_STATES,
) -> float:
    """Exact expected makespan of ``regimen``, vectorized per layer.

    For every state block, ``E[S] = (1 + Σ_{T≠∅} w_T E[S ^ T]) / (1 - w_∅)``
    is evaluated as one gather + einsum over the block's subset table.
    Raises :class:`ScheduleError` when some state makes no progress
    (infinite expectation), like the scalar engine.
    """
    n = instance.n
    check_state_budget(n, 1, max_states)
    if n == 0:
        return 0.0
    size = 1 << n
    obs.add("exact.states_allocated", size)
    with obs.span("exact.lattice.build", states=size, op="regimen"):
        table = _materialize_regimen(regimen, n, instance.m)
        elig = eligibility_masks(instance)
        pc = popcount_array(np.arange(size, dtype=np.int64))
        blocks = build_regimen_structure(
            instance, table, elig, pc, max_states=max_states
        )
    with obs.span("exact.layer_sweep", layers=n, blocks=len(blocks), op="regimen"):
        expect = np.zeros(size, dtype=np.float64)
        for c in range(1, n + 1):
            for block in blocks:
                sel, deltas, weights = block.layer(c)
                if sel.size == 0:
                    continue
                stay = weights[:, 0]
                blocked = stay >= 1.0 - _STAY_EPS
                if np.any(blocked):
                    bad = int(sel[int(np.argmax(blocked))])
                    raise ScheduleError(
                        f"regimen makes no progress from state "
                        f"{iterable_from_bitmask(bad)}; expected makespan is infinite"
                    )
                succ = expect[sel[:, None] ^ deltas[:, 1:]]
                acc = 1.0 + np.einsum("gt,gt->g", weights[:, 1:], succ)
                expect[sel] = acc / (1.0 - stay)
    return float(expect[size - 1])


def _position_assignment(schedule: CyclicSchedule, tau: int) -> np.ndarray:
    P = schedule.prefix_length
    return schedule.prefix.table[tau] if tau < P else schedule.cycle.table[tau - P]


def _position_structures(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    positions: int,
    elig: np.ndarray,
    pc: np.ndarray,
    max_states: int,
) -> list[list[TransitionBlock]]:
    """One block list per schedule position, deduplicated by assignment.

    Long serial tails repeat the same assignment for many consecutive
    positions; sharing one structure keeps construction linear in the
    number of *distinct* assignments.
    """
    cache: dict[bytes, list[TransitionBlock]] = {}
    out = []
    for tau in range(positions):
        a = _position_assignment(schedule, tau)
        key = a.tobytes()
        if key not in cache:
            cache[key] = build_step_structure(
                instance, a, elig, pc, max_states=max_states
            )
        out.append(cache[key])
    return out


def expected_makespan_cyclic(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    max_states: int = DEFAULT_MAX_STATES,
) -> float:
    """Exact expected makespan of a prefix+cycle schedule, vectorized.

    Identical recurrence and rho-shape closed form as the scalar engine
    (see :func:`repro.sim.exact.scalar.expected_makespan_cyclic`), but the
    per-position coefficients ``a_τ = 1 + Σ_{T≠∅} w_T E[S^T, next(τ)]``
    and ``b_τ = w_∅`` are produced for a whole popcount layer at once,
    and the cycle solve / backward substitution run vectorized over the
    layer's states.
    """
    n = instance.n
    schedule.validate_against(instance)
    P = schedule.prefix_length
    L = schedule.cycle_length
    total = P + L
    check_state_budget(n, total, max_states)
    if n == 0:
        return 0.0
    size = 1 << n
    obs.add("exact.states_allocated", size * total)
    with obs.span("exact.lattice.build", states=size, positions=total, op="cyclic"):
        elig = eligibility_masks(instance)
        pc = popcount_array(np.arange(size, dtype=np.int64))
        structures = _position_structures(
            instance, schedule, total, elig, pc, max_states
        )
    expect = np.zeros((size, total), dtype=np.float64)
    with obs.span("exact.layer_sweep", layers=n, positions=total, op="cyclic"):
        for c in range(1, n + 1):
            lay = np.flatnonzero(pc == c)
            G = lay.size
            a = np.empty((G, total), dtype=np.float64)
            b = np.empty((G, total), dtype=np.float64)
            for tau in range(total):
                nxt_tau = tau + 1 if tau + 1 < total else P
                for block in structures[tau]:
                    sel, deltas, weights = block.layer(c)
                    if sel.size == 0:
                        continue
                    pos = np.searchsorted(lay, sel)
                    b[pos, tau] = weights[:, 0]
                    if deltas.shape[1] > 1:
                        w = weights[:, 1:]
                        succ = expect[sel[:, None] ^ deltas[:, 1:], nxt_tau]
                        # Zero-weight subsets may point at dead (E = inf)
                        # states; mask them so 0 * inf never produces NaN
                        # (the scalar engine drops zero-probability branches).
                        a[pos, tau] = 1.0 + np.einsum(
                            "gt,gt->g", w, np.where(w > 0.0, succ, 0.0)
                        )
                    else:
                        a[pos, tau] = 1.0
            # Cycle closed form: E_P = A + B E_P around the loop (rho shape).
            A = np.zeros(G, dtype=np.float64)
            B = np.ones(G, dtype=np.float64)
            with np.errstate(invalid="ignore"):
                for off in range(L):
                    tau = P + off
                    A = A + B * a[:, tau]
                    B = B * b[:, tau]
                dead = (B >= 1.0 - _STAY_EPS) | ~np.isfinite(A)
                e_start = np.where(
                    dead, np.inf, A / np.where(dead, 1.0, 1.0 - B)
                )
                # Backward substitution; b == 0 short-circuits so that a dead
                # successor (E = inf) does not poison a zero-probability link.
                e_next = e_start
                for tau in range(total - 1, -1, -1):
                    e_tau = np.where(
                        b[:, tau] == 0.0, a[:, tau], a[:, tau] + b[:, tau] * e_next
                    )
                    expect[lay, tau] = e_tau
                    e_next = e_tau
    value = float(expect[size - 1, 0])
    if not np.isfinite(value):
        raise ScheduleError(
            "cyclic schedule makes no progress from some reachable state; "
            "expected makespan is infinite"
        )
    return value


def state_distribution(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    horizon: int,
    max_states: int = DEFAULT_MAX_STATES,
) -> np.ndarray:
    """Exact forward state distribution, scattered with ``bincount``.

    Row ``t`` is the distribution of the unfinished set after ``t`` steps;
    each step pushes every state's mass along its block's subset table in
    one flattened ``np.bincount`` (weights sum to 1 per state, so each row
    remains a distribution exactly as in the scalar engine).
    """
    n = instance.n
    check_state_budget(n, horizon + 1, max_states)
    schedule.validate_against(instance)
    size = 1 << n
    obs.add("exact.states_allocated", size * (horizon + 1))
    dist = np.zeros((horizon + 1, size), dtype=np.float64)
    dist[0, size - 1] = 1.0
    P = schedule.prefix_length
    L = schedule.cycle_length
    positions = min(horizon, P + L)
    with obs.span(
        "exact.lattice.build", states=size, positions=positions, op="forward"
    ):
        elig = eligibility_masks(instance)
        pc = popcount_array(np.arange(size, dtype=np.int64))
        structures = _position_structures(
            instance, schedule, positions, elig, pc, max_states
        )
    with obs.span("exact.layer_sweep", steps=horizon, op="forward"):
        for t in range(horizon):
            tau = t if t < P else P + (t - P) % L
            row = dist[t]
            nxt = dist[t + 1]
            for block in structures[tau]:
                mass = row[block.states]
                targets = block.states[:, None] ^ block.deltas
                nxt += np.bincount(
                    targets.ravel(),
                    weights=(mass[:, None] * block.weights).ravel(),
                    minlength=size,
                )
    return dist


def exact_completion_curve(
    instance: SUUInstance,
    schedule: CyclicSchedule,
    horizon: int,
    max_states: int = DEFAULT_MAX_STATES,
) -> np.ndarray:
    """Exact ``Pr[all jobs done by step t]`` for ``t = 1..horizon``."""
    dist = state_distribution(instance, schedule, horizon, max_states=max_states)
    return dist[1:, 0].copy()

"""The execution tree of a schedule (Figure 1, right).

Every possible execution of a schedule forms an infinite rooted tree whose
nodes are intermediate states; the paper uses this object in the proof of
Theorem 2.2 (mass accumulation).  This module materializes the tree up to a
depth, tracking for one distinguished job the mass accumulated along each
path, which lets us compute *exactly* quantities such as

* ``Pr[job j finishes by step T]``,
* ``Pr[job j accumulates mass >= θ within T steps]`` (the Thm 2.2 event),
* the expected mass of a job at a given step (Theorem 3.1's quantity).

Exponential in both depth and the number of concurrently-assigned jobs;
intended for tiny instances (n ≤ ~4, depth ≤ ~10) and for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import as_rng
from ..core.instance import SUUInstance
from ..core.schedule import AdaptivePolicy, CyclicSchedule, ObliviousSchedule, Regimen
from ..errors import ExactSolverLimitError
from .markov import eligible_bitmask, transition_distribution

__all__ = ["ExecTreeNode", "ExecutionTree", "build_execution_tree"]


@dataclass
class ExecTreeNode:
    """One node of the execution tree.

    ``state`` is the bitmask of unfinished jobs *after* ``depth`` steps,
    ``prob`` the probability of reaching this node, and ``job_mass`` the
    mass the distinguished job accumulated along the path to this node.
    """

    state: int
    depth: int
    prob: float
    job_mass: float
    children: list["ExecTreeNode"] = field(default_factory=list)


class ExecutionTree:
    """A truncated execution tree with exact path probabilities."""

    def __init__(self, root: ExecTreeNode, job: int, depth: int):
        self.root = root
        self.job = job
        self.depth = depth

    def leaves(self) -> list[ExecTreeNode]:
        out: list[ExecTreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.children:
                stack.extend(node.children)
            else:
                out.append(node)
        return out

    def num_nodes(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def prob_job_finished(self) -> float:
        """Exact ``Pr[job j finished within the tree depth]``."""
        bit = 1 << self.job
        return float(
            sum(leaf.prob for leaf in self.leaves() if not leaf.state & bit)
        )

    def prob_mass_at_least(self, theta: float) -> float:
        """Exact ``Pr[job j accumulates mass >= theta]`` (Thm 2.2 event)."""
        return float(
            sum(leaf.prob for leaf in self.leaves() if leaf.job_mass >= theta - 1e-12)
        )

    def expected_mass(self) -> float:
        """Exact expected mass of the distinguished job at the tree depth."""
        return float(sum(leaf.prob * leaf.job_mass for leaf in self.leaves()))

    def prob_all_finished(self) -> float:
        return float(sum(leaf.prob for leaf in self.leaves() if leaf.state == 0))

    def total_leaf_probability(self) -> float:
        """Should be 1 up to floating error; used as a sanity check."""
        return float(sum(leaf.prob for leaf in self.leaves()))


def _assignment_at(
    instance: SUUInstance,
    schedule,
    state: int,
    depth: int,
    rng: np.random.Generator,
) -> np.ndarray:
    if isinstance(schedule, (ObliviousSchedule, CyclicSchedule)):
        return schedule.assignment_at(depth)
    if isinstance(schedule, Regimen):
        return schedule.assignment_for_state(state)
    if isinstance(schedule, AdaptivePolicy):
        unfinished = frozenset(
            j for j in range(instance.n) if (state >> j) & 1
        )
        elig_mask = eligible_bitmask(instance, state)
        eligible = frozenset(j for j in unfinished if (elig_mask >> j) & 1)
        return schedule.assignment_for(instance, unfinished, eligible, depth, rng)
    raise ExactSolverLimitError(
        f"cannot expand schedules of type {type(schedule).__name__}"
    )


def build_execution_tree(
    instance: SUUInstance,
    schedule,
    depth: int,
    job: int = 0,
    max_nodes: int = 200_000,
    rng: np.random.Generator | int | None = None,
) -> ExecutionTree:
    """Expand the execution tree of ``schedule`` to ``depth`` steps.

    ``job`` is the distinguished job whose mass is tracked along each path
    (Definition 2.4 semantics: mass accrues only while the job is unfinished
    and only from machines actually working on it).

    Note: adaptive policies must be deterministic for the tree to be exact;
    the ``rng`` is passed to the policy but a randomized policy would make
    path probabilities only samples.
    """
    if not (0 <= job < instance.n):
        raise ValueError(f"job {job} out of range")
    rng = as_rng(rng)
    p = instance.p
    full = (1 << instance.n) - 1
    root = ExecTreeNode(state=full, depth=0, prob=1.0, job_mass=0.0)
    count = 1
    frontier = [root]
    for d in range(depth):
        next_frontier: list[ExecTreeNode] = []
        for node in frontier:
            if node.state == 0:
                # All jobs done: the execution has stopped; keep as leaf.
                continue
            a = _assignment_at(instance, schedule, node.state, d, rng)
            active = eligible_bitmask(instance, node.state)
            added_mass = 0.0
            if (node.state >> job) & 1 and (active >> job) & 1:
                for i in range(instance.m):
                    if int(a[i]) == job:
                        added_mass += p[i, job]
            dist = transition_distribution(instance, node.state, a)
            for nxt, pr in sorted(dist.items()):
                child = ExecTreeNode(
                    state=nxt,
                    depth=d + 1,
                    prob=node.prob * pr,
                    job_mass=node.job_mass + added_mass,
                )
                node.children.append(child)
                next_frontier.append(child)
                count += 1
                if count > max_nodes:
                    raise ExactSolverLimitError(
                        f"execution tree exceeded {max_nodes} nodes at depth {d + 1}"
                    )
        frontier = next_frontier
    return ExecutionTree(root, job=job, depth=depth)

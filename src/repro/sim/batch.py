"""Batched (lockstep) simulation of adaptive policies.

The scalar engine (:mod:`repro.sim.engine`) replays one execution at a
time, re-running the policy's Python code every step of every replication.
This module advances *all* replications of an adaptive policy in lockstep:

* state is a ``(reps, jobs)`` boolean completion matrix;
* the policy is queried once per distinct *frontier state* — the set of
  completed jobs — per step, and (for stationary policies) the resulting
  per-job success-probability vector is memoized across steps, exploiting
  that Def 2.1 adaptive policies are functions of the completed-job set;
* per-step job completions are drawn as one vectorized Bernoulli over the
  ``(reps, jobs)`` success-probability matrix.

Because executions are monotone (jobs only finish), the number of distinct
frontier states encountered is typically far below ``reps × steps``, so the
policy's Python code runs orders of magnitude less often than in the scalar
loop while the per-replication makespan distribution is exactly the same.

Only *deterministic* policies are eligible: a randomized rule queried once
per state would hand every replication in that state the same draw, which
correlates replications (the per-replication marginal would still be
correct, but the estimator's standard error would be wrong).
:func:`repro.sim.montecarlo.estimate_makespan` routes randomized policies
to the scalar engine automatically.

``docs/architecture.md`` documents the full engine decision tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from .._util import as_rng
from ..core.instance import SUUInstance
from ..core.mass import assignment_success_prob
from ..core.schedule import AdaptivePolicy, CyclicSchedule, ObliviousSchedule, Regimen
from ..errors import ScheduleError
from .engine import (
    DEFAULT_MAX_STEPS,
    assignment_for_step,
    effective_assignment,
    eligible_mask,
)

__all__ = ["BatchExecutionResult", "simulate_batch", "batchable"]


@dataclass
class BatchExecutionResult:
    """Outcome of a lockstep batch of stochastic executions.

    Attributes
    ----------
    makespans:
        Per-replication makespan (1-based step of the last completion);
        replications that hit the step budget report the censored value
        ``max_steps``.
    finished:
        Per-replication flag: did every job complete within the budget?
    steps_executed:
        Steps simulated before every replication finished (or the budget).
    policy_queries:
        Number of times the policy's rule actually ran — the quantity the
        batching exists to minimize.
    memo_entries:
        Distinct frontier-state keys held by the memo table at the end.
    """

    makespans: np.ndarray
    finished: np.ndarray
    steps_executed: int
    policy_queries: int
    memo_entries: int

    @property
    def truncated(self) -> int:
        """Number of replications censored at the step budget."""
        return int((~self.finished).sum())


def batchable(schedule) -> bool:
    """Can ``schedule`` run on the batched engine?

    True for explicit regimens and for deterministic adaptive policies;
    False for randomized policies (scalar engine) and oblivious/cyclic
    schedules (which have their own, cheaper lockstep path in
    :mod:`repro.sim.montecarlo`).
    """
    if isinstance(schedule, Regimen):
        return True
    if isinstance(schedule, AdaptivePolicy):
        return not schedule.randomized
    return False


def _query_state(
    instance: SUUInstance,
    schedule,
    t: int,
    finished_row: np.ndarray,
    policy_rng: np.random.Generator,
) -> np.ndarray:
    """One-step success-probability vector for one frontier state.

    Runs the exact same query pipeline as the scalar engine — raw
    assignment, Def 2.1 idling, product-form success probability — so the
    two engines are statistically indistinguishable by construction.
    """
    elig = eligible_mask(instance, finished_row)
    if isinstance(schedule, AdaptivePolicy):
        # Inline the adaptive branch of assignment_for_step so eligibility
        # is computed once per query instead of twice.
        unfinished = frozenset(int(j) for j in np.flatnonzero(~finished_row))
        eligible = frozenset(int(j) for j in np.flatnonzero(elig & ~finished_row))
        a = schedule.assignment_for(instance, unfinished, eligible, t, policy_rng)
    else:
        a = assignment_for_step(instance, schedule, t, finished_row, policy_rng)
    effective = effective_assignment(instance, a, finished_row, elig)
    return assignment_success_prob(instance.p, effective)


def simulate_batch(
    instance: SUUInstance,
    schedule,
    reps: int,
    rng: np.random.Generator | int | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    memoize: bool = True,
) -> BatchExecutionResult:
    """Run ``reps`` stochastic executions of an adaptive policy in lockstep.

    Parameters
    ----------
    schedule:
        An :class:`AdaptivePolicy` with ``randomized=False``, or a
        :class:`Regimen`.  Oblivious and cyclic schedules are rejected —
        use :func:`repro.sim.montecarlo.estimate_makespan`, whose dedicated
        lockstep path never queries per state at all.
    memoize:
        Cache success-probability vectors across steps keyed by
        :meth:`AdaptivePolicy.frontier_key`.  Replications sharing a
        frontier within one step always share one query (that grouping is
        the point of batching); ``memoize=False`` only disables the
        cross-step cache, which is useful for testing that memoization
        does not change results.

    The completion draws consume ``rng`` identically whether or not
    memoization is enabled, so for a deterministic policy the two settings
    produce bitwise-identical makespans under the same seed.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if isinstance(schedule, (ObliviousSchedule, CyclicSchedule)):
        raise ScheduleError(
            "oblivious/cyclic schedules have their own lockstep path in "
            "repro.sim.montecarlo; simulate_batch is for adaptive policies"
        )
    if isinstance(schedule, AdaptivePolicy):
        if schedule.randomized:
            raise ScheduleError(
                f"policy {schedule.name!r} is randomized; batching would share "
                "draws between replications — use the scalar engine"
            )
        frontier_key = schedule.frontier_key
    elif isinstance(schedule, Regimen):
        # A regimen is stationary by definition (Def 2.2).
        def frontier_key(token, t):
            return token
    else:
        raise ScheduleError(
            f"cannot batch-execute schedule of type {type(schedule).__name__}"
        )
    rng = as_rng(rng)
    # Policies receive a dedicated generator so that a rule that (against
    # its declaration) consumes randomness cannot desynchronize the
    # completion-draw stream shared by all memoization settings.
    policy_rng = np.random.default_rng(int(rng.integers(0, 2**63)))

    n = instance.n
    finished = np.zeros((reps, n), dtype=bool)
    makespans = np.full(reps, max_steps, dtype=np.int64)
    done = np.zeros(reps, dtype=bool)
    memo: dict = {}
    queries = 0
    lookups = 0
    steps = 0

    for t in range(max_steps):
        if done.all():
            break
        steps = t + 1
        active_idx = np.flatnonzero(~done)
        fin_active = finished[active_idx]  # (A, n) copy
        # Group replications by frontier state: one policy query per
        # distinct completed-job set, scattered back via fancy indexing.
        packed = np.packbits(fin_active, axis=1)
        uniq, inverse = np.unique(packed, axis=0, return_inverse=True)
        q_rows = np.empty((uniq.shape[0], n), dtype=np.float64)
        lookups += uniq.shape[0]
        for k in range(uniq.shape[0]):
            token = uniq[k].tobytes()
            key = frontier_key(token, t)
            q = memo.get(key) if memoize else None
            if q is None:
                row = np.unpackbits(uniq[k])[:n].astype(bool)
                q = _query_state(instance, schedule, t, row, policy_rng)
                queries += 1
                if memoize:
                    memo[key] = q
            q_rows[k] = q
        q_matrix = q_rows[inverse]
        draws = rng.random((active_idx.size, n))
        newly = (~fin_active) & (draws < q_matrix)
        fin_active |= newly
        finished[active_idx] = fin_active
        now_done = fin_active.all(axis=1)
        newly_done = active_idx[now_done]
        makespans[newly_done] = t + 1
        done[newly_done] = True

    # Counter flush happens once per batch, outside the lockstep loop, so
    # the disabled path costs nothing per step.
    obs.add("batch.steps", steps)
    obs.add("batch.policy_queries", queries)
    obs.add("batch.memo_hits", lookups - queries)
    obs.add("batch.memo_entries", len(memo))
    return BatchExecutionResult(
        makespans=makespans,
        finished=done.copy(),
        steps_executed=steps,
        policy_queries=queries,
        memo_entries=len(memo),
    )

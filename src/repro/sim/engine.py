"""Stochastic execution of schedules (the semantics of Definition 2.1).

One execution proceeds step by step: the schedule names a job per machine;
machines whose named job is finished or not yet eligible idle for the step
(Def 2.1); each job with at least one working machine completes with
probability ``1 - prod(1 - p_ij)`` independently across jobs and steps.

This module is the scalar (single-replication) engine that works for every
schedule type, including adaptive policies.  Two vectorized multi-replication
fast paths exist: the lockstep path for oblivious schedules in
:mod:`repro.sim.montecarlo` and the frontier-memoized batched path for
adaptive policies in :mod:`repro.sim.batch`.  ``docs/architecture.md``
documents the decision tree that picks between the three; the scalar engine
remains the reference implementation the fast paths are tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import as_rng
from ..core.instance import SUUInstance
from ..core.schedule import (
    IDLE,
    AdaptivePolicy,
    CyclicSchedule,
    ObliviousSchedule,
    Regimen,
)
from ..errors import ScheduleError, SimulationLimitError

__all__ = [
    "ExecutionResult",
    "simulate",
    "eligible_mask",
    "assignment_for_step",
    "effective_assignment",
    "DEFAULT_MAX_STEPS",
]

#: Step budget before :func:`simulate` gives up (override per call).
DEFAULT_MAX_STEPS = 1_000_000


@dataclass
class ExecutionResult:
    """Outcome of one stochastic execution.

    Attributes
    ----------
    completion:
        Per-job completion step (1-based, so a job finished in the first
        step has completion 1); ``0`` for jobs that never finished.
    makespan:
        Step at which the last job finished; only meaningful when
        ``finished`` is True.
    finished:
        Whether all jobs completed within the step budget.
    steps_executed:
        Number of steps actually simulated.
    masses:
        Per-job mass accumulated during the execution (Def 2.4: mass stops
        accumulating once the job completes, and idling machines contribute
        nothing).
    trace:
        When requested, the list of per-step effective assignments.
    """

    completion: np.ndarray
    makespan: int
    finished: bool
    steps_executed: int
    masses: np.ndarray
    trace: list[np.ndarray] = field(default_factory=list)


def eligible_mask(instance: SUUInstance, finished: np.ndarray) -> np.ndarray:
    """Boolean mask of jobs whose predecessors have all finished.

    Note: a finished job is trivially "eligible"; callers combine this with
    the unfinished mask.
    """
    dag = instance.dag
    elig = np.ones(instance.n, dtype=bool)
    if not dag.num_edges:
        return elig
    for j in range(instance.n):
        for pred in dag.predecessors(j):
            if not finished[pred]:
                elig[j] = False
                break
    return elig


def assignment_for_step(
    instance: SUUInstance,
    schedule,
    t: int,
    finished: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """The raw step-``t`` assignment of ``schedule`` in state ``finished``.

    Shared by the scalar engine and the batched engine
    (:mod:`repro.sim.batch`) so the two agree on query semantics exactly.
    The returned assignment is *raw*: machines may still name finished or
    ineligible jobs; apply :func:`effective_assignment` before drawing
    completions.
    """
    if isinstance(schedule, ObliviousSchedule):
        return schedule.assignment_at(t)
    if isinstance(schedule, CyclicSchedule):
        return schedule.assignment_at(t)
    if isinstance(schedule, Regimen):
        state = 0
        for j in np.flatnonzero(~finished):
            state |= 1 << int(j)
        return schedule.assignment_for_state(state)
    if isinstance(schedule, AdaptivePolicy):
        unfinished = frozenset(int(j) for j in np.flatnonzero(~finished))
        elig = eligible_mask(instance, finished)
        eligible = frozenset(int(j) for j in np.flatnonzero(elig & ~finished))
        return schedule.assignment_for(instance, unfinished, eligible, t, rng)
    raise ScheduleError(f"cannot execute schedule of type {type(schedule).__name__}")


def effective_assignment(
    instance: SUUInstance,
    assignment: np.ndarray,
    finished: np.ndarray,
    elig: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the Def 2.1 idling rule: machines on finished or not-yet-eligible
    jobs idle for the step.  Returns a new array; the input is not modified.
    """
    if elig is None:
        elig = eligible_mask(instance, finished)
    effective = assignment.copy()
    for i in range(instance.m):
        j = effective[i]
        if j == IDLE:
            continue
        if finished[j] or not elig[j]:
            effective[i] = IDLE
    return effective


def simulate(
    instance: SUUInstance,
    schedule,
    rng: np.random.Generator | int | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    record_trace: bool = False,
) -> ExecutionResult:
    """Run one stochastic execution of ``schedule`` on ``instance``.

    Stops as soon as all jobs are finished or after ``max_steps`` steps.
    For finite :class:`ObliviousSchedule` inputs the execution also stops at
    the end of the schedule (remaining jobs stay unfinished).
    """
    rng = as_rng(rng)
    n, m = instance.n, instance.m
    p = instance.p
    finished = np.zeros(n, dtype=bool)
    completion = np.zeros(n, dtype=np.int64)
    masses = np.zeros(n, dtype=np.float64)
    trace: list[np.ndarray] = []

    horizon = max_steps
    if isinstance(schedule, ObliviousSchedule):
        horizon = min(max_steps, schedule.length)

    steps = 0
    for t in range(horizon):
        if finished.all():
            break
        a = assignment_for_step(instance, schedule, t, finished, rng)
        steps = t + 1
        # Effective assignment: machines on finished/ineligible jobs idle.
        effective = effective_assignment(instance, a, finished)
        if record_trace:
            trace.append(effective.copy())
        # Per-job completion draws.
        fail = np.ones(n, dtype=np.float64)
        touched: set[int] = set()
        for i in range(m):
            j = effective[i]
            if j != IDLE:
                fail[j] *= 1.0 - p[i, j]
                masses[j] += p[i, j]
                touched.add(int(j))
        if touched:
            jobs = np.fromiter(touched, dtype=np.int64)
            q = 1.0 - fail[jobs]
            wins = rng.random(jobs.size) < q
            done = jobs[wins]
            finished[done] = True
            completion[done] = t + 1
    all_done = bool(finished.all())
    makespan = int(completion.max()) if all_done else steps
    if not all_done and steps >= max_steps:
        # Leave it to the caller to decide whether truncation is an error;
        # estimators count truncated runs explicitly.
        pass
    return ExecutionResult(
        completion=completion,
        makespan=makespan,
        finished=all_done,
        steps_executed=steps,
        masses=masses,
        trace=trace,
    )


def simulate_or_raise(
    instance: SUUInstance,
    schedule,
    rng: np.random.Generator | int | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ExecutionResult:
    """Like :func:`simulate` but raises if the execution did not finish."""
    result = simulate(instance, schedule, rng=rng, max_steps=max_steps)
    if not result.finished:
        raise SimulationLimitError(
            f"execution did not finish within {max_steps} steps "
            f"({int((~(result.completion > 0)).sum())} jobs left)"
        )
    return result

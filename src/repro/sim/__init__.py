"""Stochastic simulation and exact analysis of SUU schedules.

This is the **engine layer**.  First-party code evaluates schedules
through :func:`repro.evaluate.evaluate` (the one front door, which
dispatches here); the estimator/exact-solver names re-exported below are
deprecation shims kept for external callers.

Three execution engines share one set of semantics (Def 2.1); see
``docs/architecture.md`` for the decision tree:

* :mod:`.engine` — scalar reference engine, one replication at a time;
* :mod:`.montecarlo` — lockstep numpy path for oblivious/cyclic schedules;
* :mod:`.batch` — lockstep path for adaptive policies with frontier-state
  memoization.

The exact analytic layer (:mod:`.markov`, a facade over :mod:`.exact`)
solves the Figure-1 Markov chain itself: a vectorized sparse engine by
default, with the original scalar DP retained behind ``engine="scalar"``.
"""

from .batch import BatchExecutionResult, batchable, simulate_batch
from .engine import DEFAULT_MAX_STEPS, ExecutionResult, eligible_mask, simulate, simulate_or_raise
from .exec_tree import ExecutionTree, build_execution_tree
from .markov import (
    EXACT_ENGINES,
    eligible_bitmask,
    exact_completion_curve,
    expected_makespan_cyclic,
    expected_makespan_regimen,
    state_distribution,
    transition_distribution,
)
from .montecarlo import MakespanEstimate, completion_curve, estimate_makespan

__all__ = [
    "BatchExecutionResult",
    "batchable",
    "simulate_batch",
    "DEFAULT_MAX_STEPS",
    "ExecutionResult",
    "eligible_mask",
    "simulate",
    "simulate_or_raise",
    "ExecutionTree",
    "build_execution_tree",
    "EXACT_ENGINES",
    "eligible_bitmask",
    "exact_completion_curve",
    "state_distribution",
    "expected_makespan_cyclic",
    "expected_makespan_regimen",
    "transition_distribution",
    "MakespanEstimate",
    "completion_curve",
    "estimate_makespan",
]

"""Inline suppression pragmas: ``# lint: disable=<rule-id>[,<rule-id>...]``.

A pragma on a physical line suppresses findings of the named rules *on
that line only* — suppression is a per-call-site judgement, never a
file-wide switch (structural allowlists live on the rules themselves).
Every pragma must pay rent: one that suppresses nothing in a run of the
rules it names is itself reported as an ``unused-suppression`` finding,
and a pragma naming an id the registry has never heard of is reported
immediately.  Unused-suppression findings are not suppressible.
"""

from __future__ import annotations

import re

from .findings import Finding

__all__ = ["SuppressionIndex", "UNUSED_SUPPRESSION_ID", "PRAGMA_RE"]

#: Pseudo rule id under which pragma-hygiene findings are reported.
UNUSED_SUPPRESSION_ID = "unused-suppression"

PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")


class SuppressionIndex:
    """Per-file map of suppression pragmas with used/unused accounting."""

    def __init__(self, source: str):
        #: (line, rule_id) -> consumed flag
        self._pragmas: dict[tuple[int, str], bool] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = PRAGMA_RE.search(text)
            if match is None:
                continue
            for rule_id in match.group(1).split(","):
                rule_id = rule_id.strip()
                if rule_id:
                    self._pragmas[(lineno, rule_id)] = False

    def __len__(self) -> int:
        return len(self._pragmas)

    def rule_ids(self) -> set[str]:
        """Every rule id any pragma in this file names."""
        return {rule_id for _, rule_id in self._pragmas}

    def suppresses(self, line: int, rule_id: str) -> bool:
        """True (and marks the pragma used) when ``rule_id`` is disabled on ``line``."""
        if (line, rule_id) in self._pragmas:
            self._pragmas[(line, rule_id)] = True
            return True
        return False

    def hygiene_findings(
        self, rel: str, active_ids: set[str], known_ids: set[str]
    ) -> list[Finding]:
        """Unused / unknown pragma findings for this file.

        * an id not in ``known_ids`` is a typo — reported always;
        * an id in ``known_ids`` but outside ``active_ids`` is skipped (a
          ``--rule``-restricted run cannot judge pragmas for rules it did
          not execute);
        * an active id whose pragma suppressed nothing is unused.
        """
        findings = []
        for (line, rule_id), used in sorted(self._pragmas.items()):
            if rule_id not in known_ids:
                findings.append(
                    Finding(
                        rel,
                        line,
                        0,
                        UNUSED_SUPPRESSION_ID,
                        f"suppression names unknown rule id {rule_id!r}",
                    )
                )
            elif rule_id in active_ids and not used:
                findings.append(
                    Finding(
                        rel,
                        line,
                        0,
                        UNUSED_SUPPRESSION_ID,
                        f"suppression of {rule_id!r} matches no finding on this "
                        "line — remove the stale pragma",
                    )
                )
        return findings

"""Structured lint findings.

A :class:`Finding` is one violation at one source location.  Everything
downstream — the human renderer, ``--json`` export, the delegating
``tools/check_*.py`` shims, and the kill-tests — consumes this one shape,
so a rule never formats output itself: it states *what* is wrong and
*where*, and presentation is the engine's problem.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule_id), so a sorted findings list is
    stable across runs and across rule registration order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """The canonical human rendering: ``path:line:col: rule-id: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"

    def format_legacy(self) -> str:
        """The pre-framework ``tools/check_*.py`` rendering (no column, no id).

        The three delegating shims print this form so their verdict lines
        stay byte-identical to the standalone checkers they replaced.
        """
        return f"{self.path}:{self.line}: {self.message}"

    def to_dict(self) -> dict:
        return asdict(self)

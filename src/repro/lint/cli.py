"""The ``suu lint`` / ``python -m repro lint`` command implementation.

Kept separate from :mod:`repro.cli` so the framework is usable (and
testable) without the argparse surface, and so the delegating
``tools/check_*.py`` shims never import the full CLI.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from ..errors import ValidationError
from .base import rule_catalogue
from .engine import lint_paths

__all__ = ["run_lint", "add_lint_arguments"]


def add_lint_arguments(parser) -> None:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package source)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="run only this rule (repeatable; default: the full rule set)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule ids with descriptions and exit",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="OUT.json",
        help="also write the findings report as JSON ('-' for stdout)",
    )


def run_lint(args) -> int:
    """Execute the lint run described by parsed ``args``; returns exit status."""
    if args.list_rules:
        for entry in rule_catalogue():
            print(f"{entry['id']:18s} {entry['description']}")
        return 0
    try:
        report = lint_paths(paths=args.paths or None, rules=args.rule)
    except ValidationError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    for finding in report.findings:
        print(finding.format())
    if args.json is not None:
        text = json.dumps(report.to_dict(), indent=2)
        if str(args.json) == "-":
            print(text)
        else:
            args.json.write_text(text)
            print(f"findings JSON written to {args.json}")
    n = len(report.findings)
    rules = len(report.rule_ids)
    if n:
        print(
            f"lint: {n} finding(s) across {report.files_scanned} file(s) "
            f"({rules} rule(s))"
        )
        return 1
    print(f"lint: clean — {report.files_scanned} file(s), {rules} rule(s)")
    return 0

"""Instrumentation-contract rules: timing and warnings stay observable.

``bare-timer`` is the framework port of ``tools/check_instrumentation.py``
(byte-equivalent violation semantics; the tool remains as a delegating
shim).  ``typed-warning`` is new: every ``warnings.warn`` in ``src/``
must carry a *typed* warning class and an explicit ``stacklevel=``, so
warnings are filterable by category and attribute to the caller's line
rather than to library internals.
"""

from __future__ import annotations

import ast

from .base import Rule, register

__all__ = ["BareTimerRule", "TypedWarningRule"]

#: Clock-reading callables that must not be called outside ``repro/obs/``.
BANNED_CLOCKS = frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "time",
        "time_ns",
    }
)

#: Modules allowed to read clocks directly: the instrumentation layer.
TIMER_ALLOWED_PREFIXES = ("repro/obs/",)


@register
class BareTimerRule(Rule):
    """``repro.obs`` is the one sanctioned timing layer (PR 7).

    Bare ``time.perf_counter()``-family reads bypass the telemetry: the
    measurement exists but never appears in spans, counters, or exported
    traces.  ``time.sleep`` and friends are not timing reads and stay
    unrestricted.
    """

    id = "bare-timer"
    description = (
        "bare time.perf_counter()-family clock reads outside repro/obs/ "
        "bypass the telemetry; use obs.span / obs.stopwatch"
    )

    def exempt(self, rel: str) -> bool:
        return rel.startswith(TIMER_ALLOWED_PREFIXES)

    def start_file(self, ctx) -> None:
        #: Local names bound to banned clocks by ``from time import ...``.
        self._from_time: set[str] = set()
        #: Bare-name calls seen during the walk, resolved in finish_file so
        #: a call textually above the import is still caught (the walk is
        #: document order; runtime order is not).
        self._name_calls: list[ast.Call] = []

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.module != "time":
            return
        banned = {a.asname or a.name for a in node.names if a.name in BANNED_CLOCKS}
        if banned:
            ctx.report(
                self,
                node,
                f"imports clock(s) {sorted(banned)} from time — use repro.obs "
                "(span / stopwatch) instead",
            )
            self._from_time |= banned

    def visit_Call(self, node: ast.Call, ctx) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in BANNED_CLOCKS
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self._report_call(node, f"time.{func.attr}", ctx)
        elif isinstance(func, ast.Name):
            self._name_calls.append(node)

    def finish_file(self, ctx) -> None:
        for node in self._name_calls:
            if node.func.id in self._from_time:
                self._report_call(node, node.func.id, ctx)

    def _report_call(self, node: ast.Call, name: str, ctx) -> None:
        ctx.report(
            self,
            node,
            f"bare {name}() timing call — use repro.obs (span / stopwatch) "
            "instead",
        )


#: Base categories too coarse to filter on — a typed subclass is required.
UNTYPED_CATEGORIES = frozenset({"Warning", "UserWarning", "RuntimeWarning"})


def _category_name(node: ast.expr) -> str | None:
    """The warning-class name an expression denotes, if recognizable."""
    if isinstance(node, ast.Call):
        return _category_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register
class TypedWarningRule(Rule):
    """Warnings carry a typed class and an explicit ``stacklevel`` (this PR).

    A bare-string ``warnings.warn("...")`` is an unfilterable
    ``UserWarning`` attributed to the library's own line.  Passing one of
    the repo's typed warning classes (``CensoredEstimateWarning``,
    ``StaleCacheWarning``, ``DeprecationWarning``, ...) makes the category
    catchable/silenceable, and an explicit ``stacklevel=`` points the
    report at the caller that can act on it.
    """

    id = "typed-warning"
    description = (
        "warnings.warn in src/ must pass a typed warning class (not a bare "
        "string / UserWarning) and an explicit stacklevel="
    )

    def start_file(self, ctx) -> None:
        #: Local aliases of warnings.warn bound by ``from warnings import warn``.
        self._warn_aliases: set[str] = set()
        self._name_calls: list[ast.Call] = []

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.module == "warnings":
            self._warn_aliases |= {
                a.asname or a.name for a in node.names if a.name == "warn"
            }

    def visit_Call(self, node: ast.Call, ctx) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "warn"
            and isinstance(func.value, ast.Name)
            and func.value.id == "warnings"
        ):
            self._check_warn(node, ctx)
        elif isinstance(func, ast.Name):
            self._name_calls.append(node)

    def finish_file(self, ctx) -> None:
        for node in self._name_calls:
            if node.func.id in self._warn_aliases:
                self._check_warn(node, ctx)

    def _check_warn(self, node: ast.Call, ctx) -> None:
        category = None
        if node.args:
            category = _category_name(node.args[0])
        if len(node.args) >= 2:
            category = _category_name(node.args[1])
        for kw in node.keywords:
            if kw.arg == "category":
                category = _category_name(kw.value)
        if (
            category is None
            or not category.endswith("Warning")
            or category in UNTYPED_CATEGORIES
        ):
            ctx.report(
                self,
                node,
                "warnings.warn() without a typed warning class — pass a "
                "repro warning type (e.g. CensoredEstimateWarning) or a "
                "stdlib subclass, not a bare string/UserWarning",
            )
        if not any(kw.arg == "stacklevel" for kw in node.keywords):
            ctx.report(
                self,
                node,
                "warnings.warn() without an explicit stacklevel= — the "
                "warning will blame this line instead of the caller",
            )

"""Determinism-contract rules: replayability survives refactors.

Both rules are new in this PR — neither contract had a guard before.

``seed-discipline`` protects the property every reproduction guarantee
rests on: the paper's randomized adaptive policies, bitwise worker-count
invariance of sharded Monte Carlo merges (PR 2), and the fuzzer's
replayable corpus (PR 3) all hold only because every random draw flows
through an explicitly threaded, ``SeedSequence``-derived
``np.random.Generator``.  One global-state draw anywhere in ``src/``
breaks all three silently.

``fork-safe-task`` protects the executor task protocol (PR 2): payload
functions cross a pickle boundary under the process executor, and
lambdas / locally-defined functions pickle by reference — they import
fine under ``fork`` but crash on ``spawn`` platforms, exactly where CI
doesn't run.
"""

from __future__ import annotations

import ast

from .base import Rule, register

__all__ = ["SeedDisciplineRule", "ForkSafeTaskRule"]

#: The explicit-Generator surface of ``np.random`` — everything else on
#: the module is either global state (``seed``, draw functions) or the
#: legacy ``RandomState`` world.
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class SeedDisciplineRule(Rule):
    """All randomness threads an explicit ``Generator`` / ``SeedSequence``.

    Bans, inside ``src/``:

    * ``np.random.seed(...)`` — mutates hidden global state;
    * module-level ``np.random.*`` draws (``np.random.uniform`` etc.) —
      consume hidden global state, so results depend on call order;
    * ``import random`` / ``from random import ...`` — the stdlib global
      RNG, unseedable per-stream and invisible to ``SeedSequence`` spawning.

    ``np.random.default_rng`` / ``Generator`` / ``SeedSequence`` and the
    bit generators are the sanctioned surface.
    """

    id = "seed-discipline"
    description = (
        "no np.random.seed, module-level np.random.* draws, or stdlib "
        "random in src/; thread an explicit Generator / SeedSequence"
    )

    def visit_Call(self, node: ast.Call, ctx) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            attr = parts[2]
            if attr == "seed":
                ctx.report(
                    self,
                    node,
                    "np.random.seed() mutates hidden global RNG state — "
                    "thread an explicit np.random.Generator / SeedSequence",
                )
            elif attr not in ALLOWED_NP_RANDOM:
                ctx.report(
                    self,
                    node,
                    f"module-level np.random.{attr}() draws from hidden "
                    "global state — draw from an explicitly threaded "
                    "Generator instead",
                )

    def visit_Import(self, node: ast.Import, ctx) -> None:
        for alias in node.names:
            if alias.name == "random":
                ctx.report(
                    self,
                    node,
                    "stdlib random is a hidden global RNG — use a threaded "
                    "np.random.Generator (SeedSequence-derived) instead",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.module == "random":
            ctx.report(
                self,
                node,
                "stdlib random is a hidden global RNG — use a threaded "
                "np.random.Generator (SeedSequence-derived) instead",
            )


#: Methods of the executor task protocol whose first argument crosses the
#: pickle boundary (Executor.map_tasks; ProcessPoolExecutor.submit).
TASK_SUBMISSION_METHODS = frozenset({"map_tasks", "submit"})


@register
class ForkSafeTaskRule(Rule):
    """Executor task functions must survive the pickle boundary.

    Flags a lambda or a locally-defined (nested) function passed as the
    task function to ``*.map_tasks(fn, ...)`` or ``*.submit(fn, ...)``.
    Both pickle by reference, so they work under the ``fork`` start
    method and crash under ``spawn`` — task functions belong at module
    level (see ``repro/parallel/worker.py``).  Progress callbacks are not
    checked: they stay in the parent process.
    """

    id = "fork-safe-task"
    description = (
        "no lambdas or locally-defined functions as executor task payloads "
        "(map_tasks / submit); they break pickling on spawn backends"
    )

    def visit_Call(self, node: ast.Call, ctx) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in TASK_SUBMISSION_METHODS
        ):
            return
        task_fn = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "fn":
                task_fn = kw.value
        if task_fn is None:
            return
        method = func.attr
        if isinstance(task_fn, ast.Lambda):
            ctx.report(
                self,
                node,
                f"lambda submitted through {method}() — lambdas don't "
                "pickle on spawn backends; use a module-level function",
            )
        elif (
            isinstance(task_fn, ast.Name)
            and task_fn.id in ctx.local_function_names
        ):
            ctx.report(
                self,
                node,
                f"locally-defined function {task_fn.id!r} submitted through "
                f"{method}() — nested functions don't pickle on spawn "
                "backends; define the task at module level",
            )

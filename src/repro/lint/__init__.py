"""repro.lint — the unified rule-plugin static-analysis framework.

One engine, many rules: each file under ``src/`` is parsed and walked
exactly once per run, and every registered :class:`Rule` receives the AST
events it declared hooks for.  The seven built-in rules guard the repo's
standing contracts:

========================  ====================================================
rule id                   contract guarded
========================  ====================================================
``legacy-callsite``       first-party evaluation goes through ``evaluate()``
``bare-timer``            ``repro.obs`` is the one sanctioned timing layer
``solver-callsite``       solvers dispatch through the capability registry
``seed-discipline``       all randomness threads an explicit ``Generator``
``typed-warning``         warnings carry a typed class + explicit stacklevel
``fork-safe-task``        executor task payloads survive the pickle boundary
``blocking-in-async``     the serving layer never blocks its event loop
========================  ====================================================

Findings can be suppressed per line with ``# lint: disable=<rule-id>``
(comma-separated for several rules); a pragma that suppresses nothing is
itself reported.  Run via ``suu lint`` / ``python -m repro lint``, or
programmatically through :func:`lint_paths` / :func:`lint_file`.
"""

from .base import Rule, all_rule_ids, build_rules, register, rule_catalogue
from .engine import FileContext, LintReport, default_root, lint_file, lint_paths
from .findings import Finding
from .suppress import UNUSED_SUPPRESSION_ID, SuppressionIndex

# Importing the rule modules populates the registry as a side effect.
from . import rules_async, rules_determinism, rules_dispatch, rules_instrumentation  # noqa: F401  isort: skip

__all__ = [
    "Rule",
    "Finding",
    "FileContext",
    "LintReport",
    "SuppressionIndex",
    "UNUSED_SUPPRESSION_ID",
    "register",
    "all_rule_ids",
    "build_rules",
    "rule_catalogue",
    "lint_file",
    "lint_paths",
    "default_root",
]

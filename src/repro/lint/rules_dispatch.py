"""Dispatch-contract rules: every call goes through the sanctioned door.

``legacy-callsite`` and ``solver-callsite`` are the framework ports of
``tools/check_legacy_callsites.py`` and ``tools/check_solver_callsites.py``
(which remain as thin delegating shims).  Violation semantics — what
counts as a hit, and the message text after ``path:line:`` — are
byte-equivalent to the standalone checkers they replaced.
"""

from __future__ import annotations

import ast

from .base import Rule, register

__all__ = ["LegacyCallsiteRule", "SolverCallsiteRule"]


def _callee_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


#: The public names that are deprecation shims over the engine layer
#: (mirrors repro._deprecation.LEGACY_ENTRY_POINTS).
LEGACY_ENTRY_POINTS = frozenset(
    {
        "estimate_makespan",
        "completion_curve",
        "expected_makespan_regimen",
        "expected_makespan_cyclic",
        "exact_completion_curve",
        "state_distribution",
    }
)

#: Modules allowed to mention legacy names: the shim definitions, the
#: engine layer they wrap, and the package re-export surfaces.
LEGACY_ALLOWED_MODULES = frozenset(
    {
        "repro/sim/montecarlo.py",
        "repro/sim/markov.py",
        "repro/sim/__init__.py",
        "repro/sim/exact/__init__.py",
        "repro/sim/exact/sparse.py",
        "repro/sim/exact/scalar.py",
        "repro/sim/exact/lattice.py",
        "repro/__init__.py",
    }
)


@register
class LegacyCallsiteRule(Rule):
    """First-party code must use the ``evaluate()`` front door (PR 5).

    The pre-front-door entry points are :class:`DeprecationWarning` shims
    kept for external callers only; a call or import inside ``src/``
    silently bypasses dispatch, adaptive precision, and provenance.
    """

    id = "legacy-callsite"
    description = (
        "legacy evaluation entry points (estimate_makespan, completion_curve, "
        "...) are external-caller shims; first-party code goes through "
        "repro.evaluate.evaluate()"
    )

    def exempt(self, rel: str) -> bool:
        return rel in LEGACY_ALLOWED_MODULES

    def visit_Call(self, node: ast.Call, ctx) -> None:
        name = _callee_name(node)
        if name in LEGACY_ENTRY_POINTS:
            ctx.report(
                self,
                node,
                f"call to legacy entry point {name}() — go through "
                "repro.evaluate.evaluate()",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        imported = {a.name for a in node.names} & LEGACY_ENTRY_POINTS
        if imported:
            ctx.report(
                self,
                node,
                f"imports legacy entry point(s) {sorted(imported)} — go "
                "through repro.evaluate.evaluate()",
            )


#: Concrete solver functions — the registry records' ``fn`` targets plus
#: the ``all_baselines`` convenience bundle they replaced.
SOLVER_FUNCTIONS = frozenset(
    {
        "suu_i_adaptive",
        "suu_i_oblivious",
        "suu_i_lp",
        "solve_chains",
        "solve_tree",
        "solve_forest",
        "solve_layered",
        "serial_baseline",
        "round_robin_baseline",
        "greedy_prob_policy",
        "random_policy",
        "msm_eligible_policy",
        "exact_baseline",
        "state_round_robin_regimen",
        "online_greedy",
        "all_baselines",
    }
)

#: The package that defines the solvers and the registry that wraps them.
SOLVER_ALLOWED_PREFIX = "repro/algorithms/"


@register
class SolverCallsiteRule(Rule):
    """Solvers are reached only through the capability-typed registry (PR 8).

    Importing a concrete solver function outside ``repro/algorithms/``
    skips the DAG-class and size capability checks and drops the call
    site out of registry-driven sweeps; dispatch goes through ``solve()``
    / ``resolve_solver()`` / ``run_portfolio()``.
    """

    id = "solver-callsite"
    description = (
        "concrete solver functions may only be called/imported inside "
        "repro/algorithms/; everything else dispatches through the "
        "capability-typed registry"
    )

    def exempt(self, rel: str) -> bool:
        return rel.startswith(SOLVER_ALLOWED_PREFIX)

    def visit_Call(self, node: ast.Call, ctx) -> None:
        name = _callee_name(node)
        if name in SOLVER_FUNCTIONS:
            ctx.report(
                self,
                node,
                f"call to concrete solver {name}() — dispatch through the "
                "registry (solve / resolve_solver / run_portfolio)",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        imported = {a.name for a in node.names} & SOLVER_FUNCTIONS
        if imported:
            ctx.report(
                self,
                node,
                f"imports concrete solver(s) {sorted(imported)} — dispatch "
                "through the registry (solve / resolve_solver / run_portfolio)",
            )

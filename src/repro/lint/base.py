"""The :class:`Rule` plugin protocol and the rule registry.

A rule is a small class: an ``id``, a ``description``, optional per-file
allowlisting (:meth:`Rule.exempt`), and ``visit_<NodeType>`` hooks named
after :mod:`ast` node classes (``visit_Call``, ``visit_ImportFrom``, ...).
The engine parses each file **once** and dispatches every AST node, in
document order, to every registered rule that declared a hook for that
node type — adding a rule never adds a parse or a tree walk.

Rules register themselves with the :func:`register` decorator at import
time; ``repro.lint.__init__`` imports the built-in rule modules so the
default registry is always fully populated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import FileContext

__all__ = ["Rule", "register", "all_rule_ids", "build_rules", "rule_catalogue"]


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` and :attr:`description`, then implement any
    of the ``visit_<NodeType>`` hooks (signature ``(node, ctx)``) plus the
    optional :meth:`start_file` / :meth:`finish_file` lifecycle hooks.
    Rules are instantiated once per lint run and may keep per-file state,
    provided :meth:`start_file` resets it.
    """

    #: Stable kebab-case identifier, used in output and suppression pragmas.
    id: str = ""
    #: One-line statement of the contract the rule guards.
    description: str = ""

    def exempt(self, rel: str) -> bool:
        """True when ``rel`` (posix path relative to ``src/``) is allowlisted.

        Exemption is structural — the module legitimately *defines* the
        construct the rule bans — as opposed to a ``# lint: disable=``
        pragma, which is a per-line judgement call at a call site.
        """
        return False

    def start_file(self, ctx: "FileContext") -> None:
        """Reset per-file state before the file's dispatch walk."""

    def finish_file(self, ctx: "FileContext") -> None:
        """Report findings that need the whole file seen (e.g. deferred
        resolution against imports collected during the walk)."""


#: id -> rule class, populated by the :func:`register` decorator.
_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add ``cls`` to the rule registry, rejecting id clashes."""
    if not cls.id:
        raise ValidationError(f"rule class {cls.__name__} has no id")
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValidationError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rule_ids() -> list[str]:
    """Every registered rule id, sorted."""
    return sorted(_REGISTRY)


def build_rules(ids: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the requested rules (default: the full registry).

    Unknown ids raise :class:`ValidationError` listing the known set, so a
    typo in ``--rule`` fails loudly instead of silently linting nothing.
    """
    wanted = all_rule_ids() if ids is None else list(ids)
    unknown = sorted(set(wanted) - set(_REGISTRY))
    if unknown:
        raise ValidationError(
            f"unknown rule id(s) {unknown}; known rules: {all_rule_ids()}"
        )
    return [_REGISTRY[rule_id]() for rule_id in sorted(set(wanted))]


def rule_catalogue() -> list[dict]:
    """``[{"id": ..., "description": ...}, ...]`` for ``--list-rules`` / docs."""
    return [
        {"id": rule_id, "description": _REGISTRY[rule_id].description}
        for rule_id in all_rule_ids()
    ]

"""Async-hygiene rule: the serving layer must never block its event loop.

``blocking-in-async`` is scoped to ``repro/serve/`` — the one package
that runs an asyncio event loop — and bans the three classic ways a
coroutine quietly freezes the whole server:

* ``time.sleep`` (including ``from time import sleep`` aliases): parks
  the loop thread; use ``await asyncio.sleep`` or hand the work to the
  worker pool.
* blocking ``subprocess`` use (``run``/``call``/``check_*``/``Popen``,
  or importing the module at all): the server's compute goes through
  ``repro.parallel`` executors bridged with ``run_in_executor``, never
  ad-hoc child processes.
* bare ``asyncio.get_event_loop()``: deprecated outside a running loop
  and a latent "attached to the wrong loop" bug inside one; use
  ``asyncio.get_running_loop()`` (or ``asyncio.run`` at the top level).
"""

from __future__ import annotations

import ast

from .base import Rule, register

__all__ = ["BlockingInAsyncRule"]

#: The rule applies only inside the asyncio serving layer.
SERVE_PREFIXES = ("repro/serve/",)

#: ``subprocess`` entry points that block until the child exits (and
#: ``Popen``, whose ``wait``/``communicate`` do) — all of them banned in
#: the serving layer, where child processes go through ``repro.parallel``.
BLOCKING_SUBPROCESS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen", "getoutput", "getstatusoutput"}
)


@register
class BlockingInAsyncRule(Rule):
    """The event loop must stay free: no sync sleeps, child waits, or
    pre-3.10 loop acquisition inside ``repro/serve/`` (this PR)."""

    id = "blocking-in-async"
    description = (
        "time.sleep / blocking subprocess calls / bare asyncio.get_event_loop() "
        "inside repro/serve/ block or misbind the event loop; use asyncio.sleep, "
        "the worker pool (run_in_executor -> repro.parallel), and "
        "asyncio.get_running_loop()"
    )

    def exempt(self, rel: str) -> bool:
        # Inverted scoping: every file *outside* the serving layer is
        # exempt — the ban is an event-loop contract, not a global one.
        return not rel.startswith(SERVE_PREFIXES)

    def start_file(self, ctx) -> None:
        #: Local names bound to banned callables by ``from x import y``.
        self._from_aliases: dict[str, str] = {}
        self._name_calls: list[ast.Call] = []

    # -- imports ---------------------------------------------------------
    def visit_Import(self, node: ast.Import, ctx) -> None:
        for alias in node.names:
            if alias.name == "subprocess" or alias.name.startswith("subprocess."):
                ctx.report(
                    self,
                    node,
                    "imports subprocess in the serving layer — child processes "
                    "go through repro.parallel executors, never ad-hoc "
                    "blocking subprocess calls",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    ctx.report(
                        self,
                        node,
                        "imports sleep from time — a sync sleep parks the "
                        "event loop; await asyncio.sleep instead",
                    )
                    self._from_aliases[alias.asname or alias.name] = "time.sleep"
        elif node.module == "subprocess":
            banned = [a for a in node.names if a.name in BLOCKING_SUBPROCESS]
            if banned:
                names = sorted(a.name for a in banned)
                ctx.report(
                    self,
                    node,
                    f"imports blocking subprocess callable(s) {names} — the "
                    "serving layer runs compute via repro.parallel executors",
                )
                for a in banned:
                    self._from_aliases[a.asname or a.name] = f"subprocess.{a.name}"
        elif node.module == "asyncio":
            for alias in node.names:
                if alias.name == "get_event_loop":
                    self._from_aliases[alias.asname or alias.name] = (
                        "asyncio.get_event_loop"
                    )

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call, ctx) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            qualified = f"{func.value.id}.{func.attr}"
            if qualified == "time.sleep":
                self._report(node, qualified, ctx)
            elif func.value.id == "subprocess" and func.attr in BLOCKING_SUBPROCESS:
                self._report(node, qualified, ctx)
            elif qualified == "asyncio.get_event_loop":
                self._report(node, qualified, ctx)
        elif isinstance(func, ast.Name):
            self._name_calls.append(node)

    def finish_file(self, ctx) -> None:
        for node in self._name_calls:
            qualified = self._from_aliases.get(node.func.id)
            if qualified is not None:
                self._report(node, qualified, ctx)

    def _report(self, node: ast.Call, qualified: str, ctx) -> None:
        fixes = {
            "time.sleep": "await asyncio.sleep (or move the wait off-loop)",
            "asyncio.get_event_loop": "asyncio.get_running_loop()",
        }
        fix = fixes.get(
            qualified, "repro.parallel executors via loop.run_in_executor"
        )
        ctx.report(
            self,
            node,
            f"{qualified}() blocks or misbinds the event loop in the serving "
            f"layer — use {fix}",
        )

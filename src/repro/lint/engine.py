"""The single-pass lint engine.

Each file under scan is read and :func:`ast.parse`\\ d **once**; the tree
is then walked once in document order, and every node is dispatched to
each active rule that declared a ``visit_<NodeType>`` hook.  Adding a
rule therefore costs one method call per matching node, not a re-parse —
the property that let three standalone ``tools/check_*.py`` scripts (three
parses of the whole tree each run) collapse into one framework.

Findings pass through the file's :class:`~repro.lint.suppress.SuppressionIndex`
(``# lint: disable=<rule-id>`` pragmas) before they reach the report, and
pragma hygiene (unused / unknown suppressions) is reported alongside.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .base import Rule, all_rule_ids, build_rules
from .findings import Finding
from .suppress import SuppressionIndex

__all__ = ["FileContext", "LintReport", "lint_file", "lint_paths", "default_root"]


def default_root() -> Path:
    """The directory rel-paths are computed against: the parent of the
    ``repro`` package (``src/`` in a checkout), so every rel looks like
    ``repro/sim/batch.py`` and matches the rules' structural allowlists."""
    return Path(__file__).resolve().parents[2]


class FileContext:
    """Per-file state shared by every rule during one dispatch walk."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module):
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []
        self._local_function_names: set[str] | None = None

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        """File a finding for ``rule`` at ``node``'s location."""
        self.findings.append(
            Finding(
                self.rel,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                rule.id,
                message,
            )
        )

    @property
    def local_function_names(self) -> set[str]:
        """Names of functions defined *inside another function* in this file.

        Such objects cannot be pickled by reference, so submitting one
        through the process-executor task protocol breaks on spawn start
        methods.  Computed lazily once per file from the already-parsed
        tree (no re-parse) and cached.
        """
        if self._local_function_names is None:
            names: set[str] = set()

            def scan(node: ast.AST, inside_function: bool) -> None:
                for child in ast.iter_child_nodes(node):
                    nested = inside_function or isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                    )
                    if nested and isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        names.add(child.name)
                    scan(child, nested)

            scan(self.tree, False)
            self._local_function_names = names
        return self._local_function_names


@dataclass
class LintReport:
    """Outcome of one lint run: findings plus run provenance."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": self.rule_ids,
            "findings": [f.to_dict() for f in self.findings],
        }


def _walk_document_order(tree: ast.AST) -> Iterable[ast.AST]:
    """Depth-first, document-order traversal (``ast.walk`` is breadth-first,
    which would hand rules calls before the imports above them)."""
    stack = [tree]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _dispatch(ctx: FileContext, rules: Sequence[Rule]) -> None:
    """One walk, all rules: route each node to every matching hook."""
    handlers: dict[str, list] = {}
    for rule in rules:
        rule.start_file(ctx)
        for attr in dir(type(rule)):
            if attr.startswith("visit_"):
                handlers.setdefault(attr[len("visit_") :], []).append(
                    getattr(rule, attr)
                )
    for node in _walk_document_order(ctx.tree):
        for hook in handlers.get(type(node).__name__, ()):
            hook(node, ctx)
    for rule in rules:
        rule.finish_file(ctx)


def _rel_for(path: Path, root: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path,
    rel: str | None = None,
    rules: "Sequence[Rule] | Sequence[str] | None" = None,
    root: Path | None = None,
) -> list[Finding]:
    """Lint one file; returns findings sorted by location.

    ``rules`` may be rule instances or rule ids (default: full registry).
    Suppression pragmas are honoured and their hygiene findings included.
    """
    root = root if root is not None else default_root()
    if rel is None:
        rel = _rel_for(path, root)
    built = (
        rules
        if rules and isinstance(rules[0], Rule)
        else build_rules(rules)  # type: ignore[arg-type]
    )
    active = [rule for rule in built if not rule.exempt(rel)]
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    ctx = FileContext(path, rel, source, tree)
    if active:
        _dispatch(ctx, active)
    index = SuppressionIndex(source)
    kept = [f for f in ctx.findings if not index.suppresses(f.line, f.rule_id)]
    kept.extend(
        index.hygiene_findings(
            rel,
            active_ids={rule.id for rule in active},
            known_ids=set(all_rule_ids()),
        )
    )
    return sorted(kept)


def iter_source_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    seen.setdefault(sub.resolve(), None)
        else:
            seen.setdefault(path.resolve(), None)
    return sorted(seen)


def lint_paths(
    paths: Sequence[Path] | None = None,
    rules: Sequence[str] | None = None,
    root: Path | None = None,
) -> LintReport:
    """Lint files/directories (default: the whole ``repro`` package source).

    Rule instances are built once and shared across files — per-file state
    is reset through :meth:`Rule.start_file` — and each file is parsed and
    walked exactly once regardless of how many rules run.
    """
    root = root if root is not None else default_root()
    targets = iter_source_files(paths if paths else [root / "repro"])
    built = build_rules(rules)
    report = LintReport(rule_ids=[rule.id for rule in built])
    for path in targets:
        report.findings.extend(lint_file(path, rules=built, root=root))
        report.files_scanned += 1
    report.findings.sort()
    return report

"""repro — Approximation algorithms for multiprocessor scheduling under uncertainty.

A faithful, tested reproduction of Lin & Rajaraman (SPAA 2007): the SUU
problem model, every algorithm in the paper (MSM-ALG, MSM-E-ALG, SUU-I-ALG,
SUU-I-OBL, the LP-based chain/tree/forest pipelines), the substrates they
rely on (LP relaxations, integral max-flow rounding, chain decomposition,
random-delay scheduling, schedule replication), exact reference solvers, a
stochastic simulator, workload generators, and an experiment harness.

Quickstart — two calls, ``solve`` then ``evaluate``::

    import numpy as np
    from repro import SUUInstance, solve, evaluate

    rng = np.random.default_rng(0)
    inst = SUUInstance(rng.uniform(0.05, 0.9, size=(4, 10)))  # 4 machines, 10 jobs
    result = solve(inst, rng=rng)
    print(evaluate(inst, result, seed=0))

``evaluate()`` is the one front door for judging any schedule: it picks
the cheapest engine satisfying the request (exact Markov when the state
guard admits it, batched/lockstep Monte Carlo otherwise, sharded parallel
when ``workers=`` is set) and returns an ``EvaluationReport`` with engine
provenance.  The pre-front-door entry points (``estimate_makespan``,
``expected_makespan_*``, ...) remain as deprecated shims.
"""

from .core import (
    IDLE,
    AdaptivePolicy,
    ChainBand,
    ChainBands,
    CyclicSchedule,
    DagClass,
    JobWindow,
    ObliviousSchedule,
    PrecedenceDAG,
    PseudoSchedule,
    Regimen,
    ScheduleResult,
    SUUInstance,
)
from .errors import (
    CycleError,
    ExactSolverLimitError,
    InfeasibleError,
    LPError,
    ReproError,
    RoundingError,
    ScheduleError,
    SimulationLimitError,
    UnsupportedDagError,
    ValidationError,
)
from .sim import (
    MakespanEstimate,
    estimate_makespan,
    expected_makespan_cyclic,
    expected_makespan_regimen,
    simulate,
    simulate_batch,
)

# The subpackage and the front-door function share the name on purpose:
# after these imports the attribute ``repro.evaluate`` is the *callable*
# (the module stays reachable as ``repro.evaluate`` in import statements
# via sys.modules, e.g. ``from repro.evaluate import EvaluationRequest``).
from .evaluate import EvaluationReport, EvaluationRequest
from .evaluate import evaluate as evaluate

# Dual nature: the subpackage's full public surface is mirrored onto the
# function object, so every idiom works — ``repro.evaluate(inst, s)``,
# ``repro.evaluate.evaluate(inst, s)`` (what the deprecation warnings
# spell out), and ``repro.evaluate.<any __all__ name>`` after a plain
# ``import repro.evaluate``.
import sys as _sys

_evaluate_module = _sys.modules[__name__ + ".evaluate"]
for _name in _evaluate_module.__all__:
    setattr(evaluate, _name, getattr(_evaluate_module, _name))
del _sys, _name, _evaluate_module

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "IDLE",
    "AdaptivePolicy",
    "ChainBand",
    "ChainBands",
    "CyclicSchedule",
    "DagClass",
    "JobWindow",
    "ObliviousSchedule",
    "PrecedenceDAG",
    "PseudoSchedule",
    "Regimen",
    "ScheduleResult",
    "SUUInstance",
    # errors
    "CycleError",
    "ExactSolverLimitError",
    "InfeasibleError",
    "LPError",
    "ReproError",
    "RoundingError",
    "ScheduleError",
    "SimulationLimitError",
    "UnsupportedDagError",
    "ValidationError",
    # sim
    "MakespanEstimate",
    "estimate_makespan",
    "expected_makespan_cyclic",
    "expected_makespan_regimen",
    "simulate",
    "simulate_batch",
    # evaluation front door (re-exported lazily below)
    "evaluate",
    "EvaluationRequest",
    "EvaluationReport",
    # algorithms / experiments (re-exported lazily below)
    "solve",
    "PAPER",
    "PRACTICAL",
    "ExperimentSpec",
    "run_experiment",
    "run_suite",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` light and avoid import cycles with
    # the algorithms package, which itself imports the core model.
    if name == "solve":
        from .algorithms.pipeline import solve

        return solve
    if name in ("PAPER", "PRACTICAL"):
        from .algorithms import constants

        return getattr(constants, name)
    if name in ("ExperimentSpec", "run_experiment", "run_suite"):
        from . import experiments

        return getattr(experiments, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

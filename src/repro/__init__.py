"""repro — Approximation algorithms for multiprocessor scheduling under uncertainty.

A faithful, tested reproduction of Lin & Rajaraman (SPAA 2007): the SUU
problem model, every algorithm in the paper (MSM-ALG, MSM-E-ALG, SUU-I-ALG,
SUU-I-OBL, the LP-based chain/tree/forest pipelines), the substrates they
rely on (LP relaxations, integral max-flow rounding, chain decomposition,
random-delay scheduling, schedule replication), exact reference solvers, a
stochastic simulator, workload generators, and an experiment harness.

Quickstart::

    import numpy as np
    from repro import SUUInstance, solve, estimate_makespan

    rng = np.random.default_rng(0)
    inst = SUUInstance(rng.uniform(0.05, 0.9, size=(4, 10)))  # 4 machines, 10 jobs
    result = solve(inst, rng=rng)
    print(estimate_makespan(inst, result.schedule, reps=200, rng=rng))
"""

from .core import (
    IDLE,
    AdaptivePolicy,
    ChainBand,
    ChainBands,
    CyclicSchedule,
    DagClass,
    JobWindow,
    ObliviousSchedule,
    PrecedenceDAG,
    PseudoSchedule,
    Regimen,
    ScheduleResult,
    SUUInstance,
)
from .errors import (
    CycleError,
    ExactSolverLimitError,
    InfeasibleError,
    LPError,
    ReproError,
    RoundingError,
    ScheduleError,
    SimulationLimitError,
    UnsupportedDagError,
    ValidationError,
)
from .sim import (
    MakespanEstimate,
    estimate_makespan,
    expected_makespan_cyclic,
    expected_makespan_regimen,
    simulate,
    simulate_batch,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "IDLE",
    "AdaptivePolicy",
    "ChainBand",
    "ChainBands",
    "CyclicSchedule",
    "DagClass",
    "JobWindow",
    "ObliviousSchedule",
    "PrecedenceDAG",
    "PseudoSchedule",
    "Regimen",
    "ScheduleResult",
    "SUUInstance",
    # errors
    "CycleError",
    "ExactSolverLimitError",
    "InfeasibleError",
    "LPError",
    "ReproError",
    "RoundingError",
    "ScheduleError",
    "SimulationLimitError",
    "UnsupportedDagError",
    "ValidationError",
    # sim
    "MakespanEstimate",
    "estimate_makespan",
    "expected_makespan_cyclic",
    "expected_makespan_regimen",
    "simulate",
    "simulate_batch",
    # algorithms / experiments (re-exported lazily below)
    "solve",
    "PAPER",
    "PRACTICAL",
    "ExperimentSpec",
    "run_experiment",
    "run_suite",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` light and avoid import cycles with
    # the algorithms package, which itself imports the core model.
    if name == "solve":
        from .algorithms.pipeline import solve

        return solve
    if name in ("PAPER", "PRACTICAL"):
        from .algorithms import constants

        return getattr(constants, name)
    if name in ("ExperimentSpec", "run_experiment", "run_suite"):
        from . import experiments

        return getattr(experiments, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

"""Small shared helpers used across the ``repro`` package."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .errors import ValidationError

__all__ = [
    "as_rng",
    "ceil_log2",
    "check_prob_matrix",
    "log2p",
    "popcount",
    "iter_submasks",
    "bitmask_from_iterable",
    "iterable_from_bitmask",
]


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh non-deterministic generator; an ``int`` is used
    as a seed; a generator is passed through unchanged.  All randomness in
    the package flows through generators obtained here, so seeding any entry
    point makes the whole computation reproducible.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise ValidationError(f"cannot interpret {rng!r} as a random generator")


def ceil_log2(x: float) -> int:
    """``ceil(log2(x))`` as an ``int``, with ``ceil_log2(x) = 0`` for x <= 1."""
    if x <= 1:
        return 0
    return int(math.ceil(math.log2(x)))


def log2p(n: int) -> float:
    """``max(1.0, log2(n))`` — the paper's ``log n`` factors, floored at 1.

    The approximation factors in the paper are asymptotic; for tiny ``n`` the
    raw logarithm can be 0 which would degenerate replication counts and
    round limits, so every use of ``log n`` in the algorithms goes through
    this helper.
    """
    return max(1.0, math.log2(max(2, n)))


def check_prob_matrix(p: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a success-probability matrix.

    Returns a C-contiguous float64 copy of shape ``(m, n)`` with entries in
    ``[0, 1]`` and at least one positive entry per column (the paper's
    standing assumption: for each job j there is a machine i with
    ``p_ij > 0``).
    """
    arr = np.array(p, dtype=np.float64, copy=True)
    if arr.ndim != 2:
        raise ValidationError(f"probability matrix must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError("probability matrix must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("probability matrix contains non-finite entries")
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ValidationError("probabilities must lie in [0, 1]")
    if np.any(arr.max(axis=0) <= 0.0):
        bad = np.flatnonzero(arr.max(axis=0) <= 0.0)
        raise ValidationError(
            f"every job needs some machine with p_ij > 0; jobs {bad.tolist()} have none"
        )
    return np.ascontiguousarray(arr)


def popcount(mask: int) -> int:
    """Number of set bits in ``mask``."""
    return int(mask).bit_count()


def iter_submasks(mask: int) -> Iterable[int]:
    """Iterate over all submasks of ``mask``, including 0 and ``mask`` itself."""
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def bitmask_from_iterable(items: Iterable[int]) -> int:
    """Build a bitmask with bit ``i`` set for each ``i`` in ``items``."""
    mask = 0
    for i in items:
        mask |= 1 << int(i)
    return mask


def iterable_from_bitmask(mask: int) -> list[int]:
    """List the set-bit positions of ``mask`` in increasing order."""
    out: list[int] = []
    i = 0
    m = int(mask)
    while m:
        if m & 1:
            out.append(i)
        m >>= 1
        i += 1
    return out


def stable_argsort_desc(values: Sequence[float]) -> np.ndarray:
    """Indices sorting ``values`` in non-increasing order, stable on ties."""
    arr = np.asarray(values, dtype=np.float64)
    # argsort of the negated array with a stable kind keeps the original
    # order among equal entries, which the greedy algorithms rely on for
    # determinism.
    return np.argsort(-arr, kind="stable")

"""Small statistics helpers for the experiment harness."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .._util import as_rng

__all__ = ["mean_ci", "bootstrap_ci", "geometric_mean", "loglog_slope", "fit_log_growth"]


def mean_ci(samples: Sequence[float], z: float = 1.96) -> tuple[float, float, float]:
    """``(mean, lo, hi)`` under the normal approximation."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean, mean
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, mean - half, mean + half


def bootstrap_ci(
    samples: Sequence[float],
    stat=np.mean,
    n_boot: int = 1000,
    alpha: float = 0.05,
    rng=None,
) -> tuple[float, float, float]:
    """``(stat, lo, hi)`` percentile-bootstrap interval."""
    rng = as_rng(rng)
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    point = float(stat(arr))
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    boots = np.asarray([stat(arr[row]) for row in idx])
    lo, hi = np.quantile(boots, [alpha / 2, 1 - alpha / 2])
    return point, float(lo), float(hi)


def geometric_mean(samples: Sequence[float]) -> float:
    arr = np.asarray(samples, dtype=np.float64)
    if np.any(arr <= 0):
        raise ValueError("geometric mean needs positive samples")
    return float(np.exp(np.mean(np.log(arr))))


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Slope ≈ k suggests ``y = Θ(x^k)``; the polylog experiments check the
    slope of ratio-vs-n stays well below 1 (sub-polynomial growth).
    """
    lx = np.log(np.asarray(xs, dtype=np.float64))
    ly = np.log(np.asarray(ys, dtype=np.float64))
    if lx.size < 2:
        raise ValueError("need at least two points")
    A = np.vstack([lx, np.ones_like(lx)]).T
    slope, _ = np.linalg.lstsq(A, ly, rcond=None)[0]
    return float(slope)


def fit_log_growth(ns: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Fit ``y ≈ a·log2(n) + b``; returns ``(a, b)``.

    Used to check O(log n)-shaped ratio growth (experiments E5/E6).
    """
    ln = np.log2(np.asarray(ns, dtype=np.float64))
    y = np.asarray(ys, dtype=np.float64)
    if ln.size < 2:
        raise ValueError("need at least two points")
    A = np.vstack([ln, np.ones_like(ln)]).T
    a, b = np.linalg.lstsq(A, y, rcond=None)[0]
    return float(a), float(b)

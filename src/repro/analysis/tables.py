"""ASCII/markdown tables for experiment output.

The benchmark harness prints "the rows the paper would report"; this module
renders them deterministically with aligned columns so bench output diffs
cleanly across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table"]


def _fmt(value: Any, ndigits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{ndigits}f}"
    return str(value)


@dataclass
class Table:
    """A simple fixed-column table.

    >>> t = Table(["n", "ratio"], title="demo")
    >>> t.add_row([10, 1.5]); t.add_row([20, 1.75])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: list[str]
    title: str = ""
    ndigits: int = 3
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} entries, table has {len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def _cells(self) -> list[list[str]]:
        return [[_fmt(v, self.ndigits) for v in row] for row in self.rows]

    def render(self) -> str:
        cells = self._cells()
        widths = [
            max(len(h), *(len(r[c]) for r in cells)) if cells else len(h)
            for c, h in enumerate(self.headers)
        ]
        lines: list[str] = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        cells = self._cells()
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in cells:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_records(self) -> list[dict]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __str__(self) -> str:
        return self.render()

"""Robustness of schedules to misestimated success probabilities.

The paper's ``p_ij`` are estimates "based on past experiences and the
workers' skill levels" (§1).  An oblivious schedule is computed from the
*nominal* matrix but executed against reality; this module measures how
the expected makespan degrades when reality deviates — multiplicative
noise, systematic optimism (true p lower than estimated), or pessimism.

Adaptive policies recompute their assignments from the nominal matrix too,
but their *state feedback* (which jobs actually finished) comes from
reality, so they partially self-correct — the gap between the two
degradation curves quantifies the robustness value of adaptivity, a
natural companion question to the paper's adaptive-vs-oblivious results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_rng
from ..core.instance import SUUInstance
from ..errors import ValidationError
from ..evaluate import evaluate

__all__ = ["PerturbationResult", "perturb_instance", "robustness_curve"]


def perturb_instance(
    instance: SUUInstance,
    scale: float = 1.0,
    noise: float = 0.0,
    rng=None,
) -> SUUInstance:
    """A copy of ``instance`` with perturbed probabilities.

    ``p'_ij = clip(p_ij · scale · ε_ij, p_floor, 1)`` with
    ``ε_ij ~ U[1−noise, 1+noise]``; ``scale < 1`` models systematic
    over-estimation (reality is worse), ``scale > 1`` under-estimation.
    Entries that were exactly zero stay zero; positive entries are floored
    at a tiny value so the instance stays valid.
    """
    if scale <= 0:
        raise ValidationError("scale must be positive")
    if not (0.0 <= noise < 1.0):
        raise ValidationError("noise must be in [0, 1)")
    rng = as_rng(rng)
    p = instance.p.copy()
    eps = rng.uniform(1.0 - noise, 1.0 + noise, size=p.shape) if noise else 1.0
    perturbed = np.clip(p * scale * eps, 0.0, 1.0)
    positive = p > 0
    perturbed[positive] = np.maximum(perturbed[positive], 1e-6)
    perturbed[~positive] = 0.0
    return SUUInstance(
        perturbed, instance.dag, name=f"{instance.name}~(x{scale:g},±{noise:g})"
    )


@dataclass
class PerturbationResult:
    """Expected makespan of one schedule across perturbation levels."""

    scales: list[float]
    means: list[float]
    nominal_mean: float

    @property
    def degradation(self) -> list[float]:
        """Makespan inflation relative to the nominal-world measurement."""
        return [m / max(self.nominal_mean, 1e-12) for m in self.means]


def robustness_curve(
    instance: SUUInstance,
    schedule,
    scales=(0.5, 0.75, 1.0, 1.25, 1.5),
    noise: float = 0.0,
    reps: int = 100,
    rng=None,
    max_steps: int = 500_000,
) -> PerturbationResult:
    """Measure E[makespan] of ``schedule`` in perturbed worlds.

    The schedule stays fixed (it was built from the nominal ``instance``);
    each world rescales the true probabilities by one entry of ``scales``
    (plus optional multiplicative noise) and the simulator re-estimates the
    expected makespan there.
    """
    rng = as_rng(rng)
    means: list[float] = []
    nominal = None
    for scale in scales:
        world = (
            instance
            if scale == 1.0 and noise == 0.0
            else perturb_instance(instance, scale=scale, noise=noise, rng=rng)
        )
        est = evaluate(
            world, schedule, mode="mc", reps=reps, seed=rng, max_steps=max_steps
        )
        means.append(est.mean)
        if scale == 1.0:
            nominal = est.mean
    if nominal is None:
        nominal_est = evaluate(
            instance, schedule, mode="mc", reps=reps, seed=rng, max_steps=max_steps
        )
        nominal = nominal_est.mean
    return PerturbationResult(
        scales=list(scales), means=means, nominal_mean=float(nominal)
    )

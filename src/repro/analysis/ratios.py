"""Approximation-ratio measurement: schedule vs exact optimum or lower bound.

The contract: ratios are reported against the *exact* ``T^OPT`` whenever the
Malewicz DP is affordable, otherwise against the certified lower bound —
making every reported ratio an upper bound on the true one.  The record
carries which reference was used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import as_rng
from ..bounds.lower import lower_bounds
from ..core.instance import SUUInstance
from ..core.schedule import ScheduleResult
from ..errors import ExactSolverLimitError
from ..evaluate import evaluate
from ..opt.malewicz import optimal_expected_makespan

__all__ = ["RatioRecord", "measure_ratio", "reference_makespan", "compare_algorithms"]


@dataclass
class RatioRecord:
    """One measured ratio: algorithm, estimate, reference, ratio."""

    instance: str
    algorithm: str
    mean_makespan: float
    std_err: float
    reference: float
    reference_kind: str  # "exact" or "lower_bound"
    ratio: float
    n: int
    m: int
    truncated: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "instance": self.instance,
            "algorithm": self.algorithm,
            "mean_makespan": self.mean_makespan,
            "std_err": self.std_err,
            "reference": self.reference,
            "reference_kind": self.reference_kind,
            "ratio": self.ratio,
            "n": self.n,
            "m": self.m,
            "truncated": self.truncated,
            **self.extra,
        }


def reference_makespan(
    instance: SUUInstance,
    exact_limit: int = 10,
    include_lp: bool = True,
    lp_engine: str = "vector",
) -> tuple[float, str]:
    """``(T^OPT or best lower bound, kind)`` for ratio denominators.

    The exact DP is attempted when ``n <= exact_limit`` and the assignment
    enumeration stays small; otherwise the combined lower bound is used,
    with its LP component built by ``lp_engine``
    (:data:`repro.lp.LP_ENGINES`).
    """
    if instance.n <= exact_limit:
        try:
            return (
                optimal_expected_makespan(instance, max_states=1 << (exact_limit + 2)),
                "exact",
            )
        except ExactSolverLimitError:
            pass
    lbs = lower_bounds(instance, include_lp=include_lp, lp_engine=lp_engine)
    return lbs.best, "lower_bound"


def measure_ratio(
    instance: SUUInstance,
    result: ScheduleResult,
    reps: int = 200,
    rng=None,
    max_steps: int = 200_000,
    reference: tuple[float, str] | None = None,
    exact_limit: int = 10,
) -> RatioRecord:
    """Monte-Carlo estimate of the schedule's ratio to the reference."""
    rng = as_rng(rng)
    if reference is None:
        reference = reference_makespan(instance, exact_limit=exact_limit)
    ref_value, ref_kind = reference
    # mode="mc" keeps the historical sampling semantics (and bitwise
    # streams) regardless of whether the schedule would admit an exact
    # solve — ratios compare like with like across algorithms.
    est = evaluate(
        instance, result.schedule, mode="mc", reps=reps, seed=rng, max_steps=max_steps
    )
    return RatioRecord(
        instance=instance.name or repr(instance),
        algorithm=result.algorithm,
        mean_makespan=est.mean,
        std_err=est.std_err,
        reference=ref_value,
        reference_kind=ref_kind,
        ratio=est.mean / max(ref_value, 1e-12),
        n=instance.n,
        m=instance.m,
        truncated=est.truncated,
    )


def compare_algorithms(
    instance: SUUInstance,
    results: dict[str, ScheduleResult],
    reps: int = 200,
    rng=None,
    max_steps: int = 200_000,
    exact_limit: int = 10,
) -> list[RatioRecord]:
    """Measure several schedules against one shared reference."""
    rng = as_rng(rng)
    reference = reference_makespan(instance, exact_limit=exact_limit)
    records = []
    for name, result in results.items():
        rec = measure_ratio(
            instance,
            result,
            reps=reps,
            rng=rng,
            max_steps=max_steps,
            reference=reference,
        )
        rec.algorithm = name
        records.append(rec)
    return records

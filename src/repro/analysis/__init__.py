"""Experiment harness helpers: tables, statistics, ratio measurement."""

from .ratios import RatioRecord, compare_algorithms, measure_ratio, reference_makespan
from .robustness import PerturbationResult, perturb_instance, robustness_curve
from .stats import bootstrap_ci, fit_log_growth, geometric_mean, loglog_slope, mean_ci
from .tables import Table

__all__ = [
    "RatioRecord",
    "compare_algorithms",
    "measure_ratio",
    "reference_makespan",
    "PerturbationResult",
    "perturb_instance",
    "robustness_curve",
    "bootstrap_ci",
    "fit_log_growth",
    "geometric_mean",
    "loglog_slope",
    "mean_ci",
    "Table",
]

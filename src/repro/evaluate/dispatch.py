"""Engine selection: route a request to the cheapest engine that serves it.

The decision tree (also rendered in ``docs/architecture.md``):

```
request forces exact?  (mode="exact" | engine="sparse" | state_distribution)
├── yes → exact Markov     (ValidationError if the schedule has no finite
│                           chain; ExactSolverLimitError if the guard trips)
├── request forces MC?  (mode="mc" | engine="batched" | workers/executor/
│   │                    shards | rtol/target_ci/budget)
│   └── yes → Monte Carlo  (sharded when a parallel knob is set)
└── auto:
    schedule is a Regimen / CyclicSchedule serving all metrics,
    and the full DP allocation 2^n × width fits max_states?
    ├── yes → exact Markov (sparse)
    └── no  → Monte Carlo  (the estimator's own lockstep/batched/scalar
                            routing, see repro.sim.montecarlo)
```

The choice is recorded on the report (``mode`` / ``engine`` / ``reason``)
so callers and tests can assert on it — "auto picked exact here" is a
testable fact, not a hope.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import SUUInstance
from ..core.schedule import (
    AdaptivePolicy,
    CyclicSchedule,
    ObliviousSchedule,
    Regimen,
)
from ..errors import ValidationError
from ..sim.exact.lattice import DEFAULT_MAX_STATES
from .request import EvaluationRequest

__all__ = ["Route", "select_route", "schedule_kind", "exact_supported", "exact_state_cost"]


@dataclass(frozen=True)
class Route:
    """A resolved dispatch decision."""

    mode: str  # "exact" | "mc"
    engine: str  # exact: "sparse"|"scalar"; mc: "auto"|"batched"|"scalar"
    sharded: bool
    reason: str
    #: Auto-mode cost model, recorded as dispatch-span attributes: the
    #: exact DP allocation this request would need and the cap it was
    #: compared against (None when the decision never priced the exact
    #: route, e.g. forced modes or schedules with no finite chain).
    cost: int | None = None
    cap: int | None = None


def schedule_kind(schedule) -> str:
    """Canonical name of the schedule family (report provenance)."""
    if isinstance(schedule, Regimen):
        return "regimen"
    if isinstance(schedule, CyclicSchedule):
        return "cyclic"
    if isinstance(schedule, ObliviousSchedule):
        return "oblivious"
    if isinstance(schedule, AdaptivePolicy):
        return "adaptive"
    return type(schedule).__name__


def exact_supported(schedule, metrics: tuple[str, ...]) -> tuple[bool, str]:
    """Can the exact Markov layer serve ``metrics`` for this schedule?

    Returns ``(ok, why_not)`` — the reason string feeds both auto-mode
    provenance and the error message when ``mode="exact"`` is forced.
    """
    if isinstance(schedule, Regimen):
        extra = {"completion_curve", "state_distribution"} & set(metrics)
        if extra:
            return (
                False,
                f"exact {'/'.join(sorted(extra))} needs the step-indexed chain "
                "of a cyclic schedule; a regimen only has the state-indexed one",
            )
        return True, ""
    if isinstance(schedule, CyclicSchedule):
        return True, ""
    kind = schedule_kind(schedule)
    return (
        False,
        f"{kind} schedules have no finite Markov chain (a finite oblivious "
        "schedule may never finish; adaptive policies would need 2^n "
        "state-dependent transition tables) — only regimens and cyclic "
        "schedules evaluate exactly",
    )


def exact_state_cost(
    instance: SUUInstance,
    schedule,
    metrics: tuple[str, ...],
    horizon: int | None,
) -> int:
    """Full DP allocation of the exact solve: ``2^n × width`` entries.

    Mirrors the guards inside ``repro.sim.exact`` (regimen: width 1;
    cyclic: prefix+cycle positions; forward curve/distribution:
    ``horizon + 1`` rows), taking the max over the requested metrics so
    auto mode only picks exact when *every* metric fits.
    """
    width = 1
    if isinstance(schedule, CyclicSchedule):
        width = schedule.prefix_length + schedule.cycle_length
    if horizon is not None and (
        "completion_curve" in metrics or "state_distribution" in metrics
    ):
        width = max(width, horizon + 1)
    return (1 << instance.n) * width


def _exact_engine(request: EvaluationRequest) -> str:
    return "sparse" if request.engine in ("auto", "sparse") else request.engine


def _mc_engine(request: EvaluationRequest) -> str:
    return "auto" if request.engine == "auto" else request.engine


def select_route(instance: SUUInstance, schedule, request: EvaluationRequest) -> Route:
    """Resolve a validated request against a concrete (instance, schedule)."""
    ok, why_not = exact_supported(schedule, request.metrics)
    if request.forces_exact:
        if not ok:
            raise ValidationError(f"mode='exact' cannot serve this request: {why_not}")
        return Route("exact", _exact_engine(request), False, "exact route requested")
    forced_mc = (
        request.mode == "mc"
        or request.engine == "batched"
        or request.wants_parallel
        or request.wants_precision
    )
    if forced_mc:
        return Route(
            "mc",
            _mc_engine(request),
            request.wants_parallel,
            "MC route requested (mode/engine/parallel/precision argument)",
        )
    # mode="auto": prefer exact whenever the whole request fits the guard.
    if ok:
        cost = exact_state_cost(instance, schedule, request.metrics, request.horizon)
        cap = request.max_states if request.max_states is not None else DEFAULT_MAX_STATES
        if cost <= cap:
            return Route(
                "exact",
                _exact_engine(request),
                False,
                f"auto: exact chain fits ({cost} <= max_states {cap})",
                cost=cost,
                cap=cap,
            )
        return Route(
            "mc",
            _mc_engine(request),
            False,
            f"auto: exact chain needs {cost} DP entries > max_states {cap}",
            cost=cost,
            cap=cap,
        )
    return Route("mc", _mc_engine(request), False, f"auto: {why_not}")

"""``evaluate()`` — the one front door for judging a schedule.

Every consumer in the repo (CLI, experiment runner, differential fuzzer,
benchmarks, examples) asks the same question through this function; the
dispatcher (:mod:`repro.evaluate.dispatch`) picks the cheapest engine
that serves the request and the answer always arrives as an
:class:`~repro.evaluate.report.EvaluationReport` with engine provenance.

The legacy entry points (``estimate_makespan``, ``expected_makespan_*``,
``completion_curve``, ``exact_completion_curve``, ``state_distribution``)
remain as deprecation shims for external callers; internally only this
module talks to the engine layer (enforced by
``tools/check_legacy_callsites.py``).
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from .. import obs
from .._util import as_rng
from ..core.instance import SUUInstance
from ..core.schedule import Regimen, ScheduleResult
from ..errors import CensoredEstimateWarning, ValidationError, warn_censored
from ..sim.exact.lattice import DEFAULT_MAX_STATES
from .dispatch import Route, schedule_kind, select_route
from .report import EvaluationReport
from .request import EvaluationRequest

__all__ = ["evaluate"]


def evaluate(
    instance: SUUInstance,
    schedule,
    request: EvaluationRequest | None = None,
    **kwargs,
) -> EvaluationReport:
    """Evaluate ``schedule`` on ``instance`` under the Def 2.1 model.

    Either pass a pre-built :class:`EvaluationRequest`, or keyword
    arguments that construct one (``metrics=``, ``mode=``, ``reps=``,
    ``seed=``, ``workers=``, ...; see the request class for the full
    list).  ``schedule`` may be any schedule kind — cyclic, finite
    oblivious, regimen, adaptive policy — or a
    :class:`~repro.core.schedule.ScheduleResult` (unwrapped), or a solver
    *name* from the capability-typed registry
    (:mod:`repro.algorithms.registry`): ``evaluate(inst, "serial")``
    schedules with that solver first (default constants, deterministic
    rng derived from the request seed — the experiment runner's solver
    stream) and then judges the result.

    Routing (``mode="auto"``): exact sparse Markov when the schedule has
    a finite chain within the ``max_states`` guard, batched/lockstep
    Monte Carlo otherwise, sharded parallel MC when ``workers`` /
    ``executor`` / ``shards`` is set.  ``mode="exact"`` / ``mode="mc"``
    force a route.  With ``mode="mc"`` and an integer ``seed`` the
    samples are bitwise identical to the legacy single-stream estimator
    at the same seed.

    Censoring surfaces uniformly: any route whose replications hit the
    step budget emits one :class:`~repro.errors.CensoredEstimateWarning`
    (or raises with ``require_finished=True``), and an exact solve past
    its guard raises :class:`~repro.errors.ExactSolverLimitError` —
    identically for every schedule kind and backend.
    """
    # The stopwatch starts before request construction/validation so
    # wall_time_s covers the whole call, not just the post-dispatch body.
    sw = obs.stopwatch()
    tracing = obs.enabled()
    counters_before = obs.counters() if tracing else {}
    with obs.span("evaluate") as root:
        if isinstance(schedule, ScheduleResult):
            schedule = schedule.schedule
        with obs.span("evaluate.validate"):
            if request is None:
                request = EvaluationRequest(**kwargs)
            elif kwargs:
                raise ValidationError(
                    "pass either a pre-built EvaluationRequest or keyword "
                    f"arguments, not both (got request= plus {sorted(kwargs)})"
                )
            if isinstance(schedule, str):
                # Solver-name sugar: schedule through the registry with a
                # deterministic solver stream (the experiment runner's
                # derivation), decoupled from the simulation stream.
                from ..algorithms.registry import resolve_solver

                base = request.seed if isinstance(request.seed, int) else 0
                schedule = resolve_solver(schedule).build(
                    instance, rng=np.random.default_rng((base, 0xA16))
                ).schedule
            if hasattr(schedule, "validate_against"):  # oblivious / cyclic tables
                schedule.validate_against(instance)
        with obs.span("evaluate.dispatch") as dspan:
            route = select_route(instance, schedule, request)
            dspan.set(
                mode=route.mode,
                engine=route.engine,
                sharded=route.sharded,
                reason=route.reason,
                exact_state_cost=route.cost,
                max_states_cap=route.cap,
            )
        root.set(
            schedule_kind=schedule_kind(schedule),
            metrics=list(request.metrics),
            mode=route.mode,
            engine=route.engine,
        )
        with obs.span("evaluate.run", mode=route.mode, engine=route.engine):
            if route.mode == "exact":
                report = _run_exact(instance, schedule, request, route)
            else:
                report = _run_mc(instance, schedule, request, route)
    report.wall_time_s = sw.elapsed_s
    if tracing:
        report.telemetry = {
            "span": root.to_dict(),
            "counters": obs.counters_since(counters_before),
        }
    return report


# ----------------------------------------------------------------------
# Exact route
# ----------------------------------------------------------------------
def _run_exact(
    instance: SUUInstance,
    schedule,
    request: EvaluationRequest,
    route: Route,
) -> EvaluationReport:
    # The facade is the one sanctioned internal caller of the engine layer.
    from ..sim.markov import (
        _exact_completion_curve,
        _expected_makespan_cyclic,
        _expected_makespan_regimen,
        _state_distribution,
    )

    max_states = (
        request.max_states if request.max_states is not None else DEFAULT_MAX_STATES
    )
    makespan = None
    curve = None
    dist = None
    if "makespan" in request.metrics:
        if isinstance(schedule, Regimen):
            makespan = _expected_makespan_regimen(
                instance, schedule, max_states=max_states, engine=route.engine
            )
        else:
            makespan = _expected_makespan_cyclic(
                instance, schedule, max_states=max_states, engine=route.engine
            )
    if "completion_curve" in request.metrics:
        curve = _exact_completion_curve(
            instance,
            schedule,
            request.horizon,
            max_states=max_states,
            engine=route.engine,
        )
    if "state_distribution" in request.metrics:
        dist = _state_distribution(
            instance,
            schedule,
            request.horizon,
            max_states=max_states,
            engine=route.engine,
        )
    return EvaluationReport(
        mode="exact",
        engine=f"markov-{route.engine}",
        schedule_kind=schedule_kind(schedule),
        makespan=makespan,
        min=makespan,
        max=makespan,
        completion_curve=curve,
        state_distribution=dist,
        reason=route.reason,
        request=request,
    )


# ----------------------------------------------------------------------
# Monte Carlo route
# ----------------------------------------------------------------------
def _mc_curve(samples: np.ndarray, truncated: int, horizon: int) -> np.ndarray:
    """Empirical completion CDF — the estimator's shared implementation.

    Delegates to :func:`repro.sim.montecarlo.censored_completion_cdf`, so
    the facade's curve is bitwise the legacy ``completion_curve`` by
    construction (one implementation, not two kept in sync).
    """
    from ..sim.montecarlo import censored_completion_cdf

    return censored_completion_cdf(samples, truncated, horizon)


def _precision_met(
    mean: float, std_err: float, request: EvaluationRequest
) -> bool:
    half = 1.96 * std_err
    if request.target_ci is not None and half > request.target_ci:
        return False
    if request.rtol is not None and half > request.rtol * max(abs(mean), 1e-12):
        return False
    return True


def _run_mc(
    instance: SUUInstance,
    schedule,
    request: EvaluationRequest,
    route: Route,
) -> EvaluationReport:
    from ..sim.montecarlo import _estimate_makespan

    # A curve-only run observes exactly `horizon` steps, like the legacy
    # completion_curve; once makespan is also requested the request's own
    # budget governs and the curve is the CDF's first `horizon` points
    # (the validator guarantees max_steps >= horizon in that case).
    if "completion_curve" in request.metrics and "makespan" not in request.metrics:
        run_max_steps = request.horizon
    else:
        run_max_steps = request.max_steps
    need_samples = (
        request.keep_samples
        or "completion_curve" in request.metrics
        or request.wants_precision
    )

    def run(reps: int, rng):
        # Censoring is re-emitted once by this routine's caller with the
        # correct attribution; the engine-layer warning is suppressed.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CensoredEstimateWarning)
            return _estimate_makespan(
                instance,
                schedule,
                reps=reps,
                rng=rng,
                max_steps=run_max_steps,
                keep_samples=need_samples,
                require_finished=request.require_finished,
                engine=route.engine,
                workers=request.workers,
                executor=request.executor,
                shards=request.shards,
            )

    if not request.wants_precision:
        # Single round: the raw seed passes straight through, so samples
        # are bitwise the legacy path's at the same seed — including the
        # sharded route, whose root-seed derivation distinguishes an
        # integer (reproducible passthrough) from a generator (one draw).
        with obs.span("mc.round", round=1, reps=request.reps):
            est = run(request.reps, request.seed)
        samples = est.samples
        mean, std_err = est.mean, est.std_err
        n_reps, truncated = est.n_reps, est.truncated
        lo, hi = est.min, est.max
        rounds, met = 1, None
        engine_used = est.engine_used
        if truncated:
            warn_censored(truncated, n_reps, run_max_steps, stacklevel=3)
    else:
        # Adaptive precision: double the replication count until the CI
        # half-width meets the target or the budget is spent.  One
        # generator feeds every round, so rounds draw fresh independent
        # replications; one merged warning is emitted below.
        rng = as_rng(request.seed)
        budget = request.effective_budget()
        chunks: list[np.ndarray] = []
        truncated = 0
        n_reps = 0
        rounds = 0
        lo, hi = math.inf, -math.inf
        next_reps = request.reps
        while True:
            with obs.span("mc.round", round=rounds + 1, reps=next_reps):
                est = run(next_reps, rng)
            rounds += 1
            chunks.append(np.asarray(est.samples))
            truncated += est.truncated
            n_reps += est.n_reps
            lo, hi = min(lo, est.min), max(hi, est.max)
            engine_used = est.engine_used
            values = np.concatenate(chunks).astype(np.float64)
            mean = float(values.mean())
            std_err = (
                float(values.std(ddof=1) / math.sqrt(n_reps)) if n_reps > 1 else 0.0
            )
            met = _precision_met(mean, std_err, request)
            if met or n_reps >= budget:
                break
            next_reps = min(n_reps, budget - n_reps)
        samples = np.concatenate(chunks)
        if truncated:
            warn_censored(truncated, n_reps, run_max_steps, stacklevel=3)

    curve = None
    if "completion_curve" in request.metrics:
        # Full-budget CDF truncated to the requested horizon; for a
        # curve-only request run_max_steps == horizon and this is exactly
        # the legacy completion_curve.
        curve = _mc_curve(samples, truncated, run_max_steps)[: request.horizon]
    # Like the exact route, the makespan fields are populated only when
    # the metric was requested: a curve-only run observes just `horizon`
    # steps, so its sample mean is E[min(makespan, horizon)] — a number
    # that must not masquerade as the expected makespan.
    wants_makespan = "makespan" in request.metrics
    return EvaluationReport(
        mode="mc",
        engine=engine_used,
        schedule_kind=schedule_kind(schedule),
        makespan=mean if wants_makespan else None,
        std_err=std_err if wants_makespan else 0.0,
        n_reps=n_reps,
        truncated=truncated,
        min=lo if wants_makespan else None,
        max=hi if wants_makespan else None,
        samples=samples if request.keep_samples else None,
        completion_curve=curve,
        sharded=route.sharded,
        rounds=rounds,
        precision_met=met,
        reason=route.reason,
        request=request,
    )

"""One front door for evaluation: ``repro.evaluate.evaluate()``.

The paper judges every schedule family the same way — expected makespan
(and completion behavior) under the Def 2.1 stochastic execution model —
so the repo exposes exactly one evaluation API:

    from repro import solve, evaluate

    result = solve(instance, rng=0)
    report = evaluate(instance, result.schedule, seed=0)
    print(report)          # E[makespan], CI or exactness, engine provenance

``evaluate()`` dispatches any schedule kind (cyclic, finite oblivious,
regimen, adaptive policy) to the cheapest engine satisfying the request:
exact sparse Markov when the ``2^n × width`` guard admits it, batched or
lockstep Monte Carlo otherwise, and the sharded parallel backend when
``workers=`` is set.  See :class:`EvaluationRequest` for the knobs and
:class:`EvaluationReport` for the result shape.
"""

from .dispatch import Route, exact_state_cost, exact_supported, schedule_kind, select_route
from .facade import evaluate
from .report import EvaluationReport
from .request import ENGINES, METRICS, MODES, EvaluationRequest

__all__ = [
    "evaluate",
    "EvaluationRequest",
    "EvaluationReport",
    "Route",
    "select_route",
    "schedule_kind",
    "exact_supported",
    "exact_state_cost",
    "METRICS",
    "MODES",
    "ENGINES",
]

"""Typed evaluation requests and the one shared argument validator.

Every way this repo judges a schedule answers the same question — how it
behaves under the Def 2.1 stochastic execution model — yet each legacy
entry point (``estimate_makespan``, ``expected_makespan_*``,
``completion_curve``, ...) grew its own argument conventions and its own
(or no) validation.  :class:`EvaluationRequest` is the single typed
description of "what do you want to know and at what cost", and
:meth:`EvaluationRequest.validate` is the single place every route —
exact, Monte Carlo, sharded — rejects malformed or conflicting arguments
with a :class:`~repro.errors.ValidationError`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..sim.engine import DEFAULT_MAX_STEPS

__all__ = [
    "EvaluationRequest",
    "METRICS",
    "MODES",
    "ENGINES",
    "DEFAULT_BUDGET_FACTOR",
    "REQUEST_HASH_VERSION",
]

#: Bump to invalidate every served/cached evaluation result when request
#: semantics change (mirrors ``ExperimentSpec.SPEC_VERSION``).
REQUEST_HASH_VERSION = 1

#: Metrics a request may ask for.  ``state_distribution`` is exact-only.
METRICS = ("makespan", "completion_curve", "state_distribution")

#: ``auto`` resolves to the cheapest admissible route (see dispatch.py).
MODES = ("auto", "exact", "mc")

#: engine name → the modes it can serve.  ``auto`` defers to the route
#: (sparse for exact, the estimator's own routing for MC); ``scalar``
#: names the golden reference of *both* layers.
ENGINES = {
    "auto": ("exact", "mc"),
    "scalar": ("exact", "mc"),
    "sparse": ("exact",),
    "batched": ("mc",),
}

#: Default replication budget, as a multiple of ``reps``, when a precision
#: target (``rtol`` / ``target_ci``) is set without an explicit ``budget``.
DEFAULT_BUDGET_FACTOR = 32

#: Arguments that steer the sharded parallel backend; they conflict with
#: any request that can only resolve to the exact route.
_PARALLEL_FIELDS = ("workers", "executor", "shards")

#: Arguments that steer the adaptive-precision Monte Carlo loop.
_PRECISION_FIELDS = ("rtol", "target_ci", "budget")


def _normalize_metrics(metrics) -> tuple[str, ...]:
    if isinstance(metrics, str):
        metrics = (metrics,)
    try:
        out = tuple(str(m).replace("-", "_") for m in metrics)
    except TypeError:
        raise ValidationError(
            f"metrics must be a metric name or a sequence of them, got {metrics!r}"
        ) from None
    return out


@dataclass(frozen=True)
class EvaluationRequest:
    """What to evaluate, how precisely, and with which resources.

    Attributes
    ----------
    metrics:
        Any subset of :data:`METRICS`.  A bare string is accepted and
        normalized to a one-tuple; hyphens normalize to underscores.
    mode:
        ``"auto"`` picks exact when the schedule has a finite Markov chain
        within the ``max_states`` guard, Monte Carlo otherwise;
        ``"exact"`` / ``"mc"`` force a route (and error loudly when the
        route cannot serve the request).
    reps / seed / max_steps:
        Monte Carlo replication count, RNG seed (int, generator, or None),
        and per-replication step budget.  With ``mode="mc"`` and the same
        seed the samples are bitwise identical to the legacy
        ``estimate_makespan`` path.
    horizon:
        Curve / distribution length; required when ``completion_curve``
        or ``state_distribution`` is requested (it is the Monte Carlo
        step budget for the curve run, matching the legacy
        ``completion_curve(max_steps=...)`` semantics).
    rtol / target_ci / budget:
        Adaptive-precision MC: replications double until the 95% CI
        half-width is below ``target_ci`` (absolute) and ``rtol * |mean|``
        (relative), or ``budget`` total replications are spent (default
        ``DEFAULT_BUDGET_FACTOR * reps``).
    engine:
        One of :data:`ENGINES`.  ``sparse`` forces the exact route,
        ``batched`` the MC route, ``scalar`` names the golden reference
        of whichever route is chosen.
    max_states:
        Exact-solver guard on the full DP allocation (default
        ``repro.sim.exact.DEFAULT_MAX_STATES``); in auto mode it is also
        the exact-vs-MC dispatch threshold.
    workers / executor / shards:
        Sharded parallel MC (``repro.parallel``); merged results are
        worker-count invariant at a fixed seed.
    keep_samples / require_finished:
        Passed through to the estimator: retain the per-replication
        makespans / escalate censoring to an error.
    """

    metrics: tuple[str, ...] = ("makespan",)
    mode: str = "auto"
    reps: int = 200
    seed: np.random.Generator | int | None = None
    max_steps: int = DEFAULT_MAX_STEPS
    horizon: int | None = None
    rtol: float | None = None
    target_ci: float | None = None
    budget: int | None = None
    engine: str = "auto"
    max_states: int | None = None
    workers: int | None = None
    executor: object | None = None
    shards: int | None = None
    keep_samples: bool = False
    require_finished: bool = False

    def __post_init__(self):
        object.__setattr__(self, "metrics", _normalize_metrics(self.metrics))
        self.validate()

    # -- derived views ---------------------------------------------------
    @property
    def wants_parallel(self) -> bool:
        """Any sharded-backend knob set?"""
        return any(getattr(self, f) is not None for f in _PARALLEL_FIELDS)

    @property
    def wants_precision(self) -> bool:
        """Adaptive-precision loop requested?"""
        return self.rtol is not None or self.target_ci is not None

    @property
    def forces_exact(self) -> bool:
        """Can this request only be served by the exact route?"""
        return (
            self.mode == "exact"
            or self.engine == "sparse"
            or "state_distribution" in self.metrics
        )

    def effective_budget(self) -> int:
        """Total-replication cap for the adaptive-precision loop."""
        return self.budget if self.budget is not None else DEFAULT_BUDGET_FACTOR * self.reps

    # -- content hashing ---------------------------------------------------
    def request_hash(self) -> str:
        """Stable 16-hex-digit digest of everything that affects the answer.

        The canonical-JSON hash mirrors ``ExperimentSpec.spec_hash``
        semantics: salted with :data:`REQUEST_HASH_VERSION` and the
        package version (so cached served results are invalidated when
        estimation semantics change and across releases), insensitive to
        construction spelling (``"completion-curve"`` and
        ``"completion_curve"`` hash identically — the validator already
        normalized the metrics), and sensitive to every knob that changes
        the numbers: seed, reps, step budget, precision targets, engine,
        guard caps, and shard plan.

        Only reproducible requests hash: a live ``numpy`` ``Generator``
        seed or a non-string executor instance has no stable content, so
        the server could neither dedup nor cache it —
        :class:`~repro.errors.ValidationError` is raised instead of
        producing a digest that silently collides.
        """
        from .. import __version__

        if self.seed is not None and not isinstance(self.seed, (int, np.integer)):
            raise ValidationError(
                "request_hash() needs a reproducible request; seed must be an "
                f"int or None, not {type(self.seed).__name__} (a live generator "
                "has no stable content to hash)"
            )
        if self.executor is not None and not isinstance(self.executor, str):
            raise ValidationError(
                "request_hash() needs a reproducible request; executor must be "
                "a name ('serial'/'process') or None, not an executor instance"
            )
        payload = {
            "metrics": list(self.metrics),
            "mode": self.mode,
            "reps": self.reps,
            "seed": int(self.seed) if self.seed is not None else None,
            "max_steps": self.max_steps,
            "horizon": self.horizon,
            "rtol": self.rtol,
            "target_ci": self.target_ci,
            "budget": self.budget,
            "engine": self.engine,
            "max_states": self.max_states,
            "workers": self.workers,
            "executor": self.executor,
            "shards": self.shards,
            "keep_samples": self.keep_samples,
            "require_finished": self.require_finished,
            "__version__": REQUEST_HASH_VERSION,
            "__package_version__": __version__,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- the one validator ------------------------------------------------
    def validate(self) -> None:
        """Reject malformed or internally conflicting requests.

        Raises :class:`~repro.errors.ValidationError` — uniformly, for
        every route — instead of each engine failing in its own way (or
        not at all) deep inside a simulation loop.
        """
        if not self.metrics:
            raise ValidationError("at least one metric is required")
        for m in self.metrics:
            if m not in METRICS:
                raise ValidationError(
                    f"unknown metric {m!r}; expected one of {METRICS}"
                )
        if len(set(self.metrics)) != len(self.metrics):
            raise ValidationError(f"duplicate metrics in {self.metrics}")
        if self.mode not in MODES:
            raise ValidationError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )
        if self.engine not in ENGINES:
            raise ValidationError(
                f"unknown engine {self.engine!r}; expected one of {tuple(ENGINES)}"
            )
        if self.mode in ("exact", "mc") and self.mode not in ENGINES[self.engine]:
            raise ValidationError(
                f"engine {self.engine!r} cannot serve mode {self.mode!r} "
                f"(it serves {ENGINES[self.engine]})"
            )
        if self.reps < 1:
            raise ValidationError(f"reps must be >= 1, got {self.reps}")
        if self.max_steps < 1:
            raise ValidationError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.rtol is not None and not self.rtol > 0:
            raise ValidationError(f"rtol must be > 0, got {self.rtol}")
        if self.target_ci is not None and not self.target_ci > 0:
            raise ValidationError(f"target_ci must be > 0, got {self.target_ci}")
        if self.budget is not None:
            if self.budget < 1:
                raise ValidationError(f"budget must be >= 1, got {self.budget}")
            if not self.wants_precision:
                raise ValidationError(
                    "budget has no effect without a precision target; "
                    "set rtol or target_ci (or drop budget)"
                )
            if self.budget < self.reps:
                raise ValidationError(
                    f"budget ({self.budget}) must cover at least the initial "
                    f"reps ({self.reps})"
                )
        if self.max_states is not None and self.max_states < 1:
            raise ValidationError(f"max_states must be >= 1, got {self.max_states}")
        if self.workers is not None and self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise ValidationError(f"shards must be >= 1, got {self.shards}")
        if isinstance(self.executor, str) and self.executor not in ("serial", "process"):
            raise ValidationError(
                f"unknown executor {self.executor!r}; expected 'serial' or 'process'"
            )
        needs_horizon = {"completion_curve", "state_distribution"} & set(self.metrics)
        if needs_horizon:
            if self.horizon is None:
                raise ValidationError(
                    f"metrics {sorted(needs_horizon)} require horizon= (the "
                    "number of steps the curve/distribution covers)"
                )
            if self.horizon < 1:
                raise ValidationError(f"horizon must be >= 1, got {self.horizon}")
            if (
                "makespan" in self.metrics
                and "completion_curve" in self.metrics
                and self.max_steps < self.horizon
            ):
                # The joint run observes max_steps steps and the curve is
                # its first `horizon` points, so a shorter budget would
                # silently censor the makespan at the curve's horizon.
                raise ValidationError(
                    f"max_steps ({self.max_steps}) must cover horizon "
                    f"({self.horizon}) when makespan and completion_curve "
                    "are requested together"
                )
        elif self.horizon is not None:
            raise ValidationError(
                "horizon has no effect without the completion_curve or "
                "state_distribution metric"
            )
        if "state_distribution" in self.metrics and self.mode == "mc":
            raise ValidationError(
                "state_distribution is an exact-only metric; it cannot be "
                "requested with mode='mc'"
            )
        if self.forces_exact:
            given_parallel = [f for f in _PARALLEL_FIELDS if getattr(self, f) is not None]
            if given_parallel:
                raise ValidationError(
                    f"conflicting request: {'/'.join(given_parallel)} steer the "
                    "sharded Monte Carlo backend, but the request can only "
                    "resolve to the exact Markov route (mode='exact', "
                    "engine='sparse', or a state_distribution metric), "
                    "which is not sharded"
                )
            given_precision = [
                f for f in _PRECISION_FIELDS if getattr(self, f) is not None
            ]
            if given_precision:
                raise ValidationError(
                    f"{'/'.join(given_precision)} have no effect on the exact "
                    "route (its answer carries no sampling error)"
                )
            if self.engine == "batched":
                raise ValidationError(
                    "engine='batched' is a Monte Carlo engine but the request "
                    "can only resolve to the exact route"
                )

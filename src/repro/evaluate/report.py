"""The one result type every evaluation route returns.

An :class:`EvaluationReport` carries the point estimate (exact or
sampled), its uncertainty, any requested curve/distribution, censoring
info, and — crucially — *engine provenance*: which route and engine
actually produced the numbers, so tests and callers can assert on the
dispatch decision instead of trusting it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from .request import EvaluationRequest

__all__ = ["EvaluationReport"]

#: ``to_dict`` keys that are *derived* views (recomputed from the real
#: fields on access), plus the request sub-dict handled separately.
_DERIVED_KEYS = frozenset({"exact", "ci95", "request"})


def _jsonable_seed(seed) -> int | str | None:
    if seed is None or isinstance(seed, int):
        return seed
    if isinstance(seed, np.integer):
        return int(seed)
    return repr(seed)  # a Generator: provenance only, not reproducible JSON


@dataclass
class EvaluationReport:
    """Outcome of one :func:`repro.evaluate.evaluate` call.

    Attributes
    ----------
    mode:
        ``"exact"`` or ``"mc"`` — the route that actually ran.
    engine:
        Engine provenance: ``markov-sparse`` / ``markov-scalar`` on the
        exact route; ``oblivious-lockstep`` / ``batched`` / ``scalar`` on
        the Monte Carlo route (per-shard engine when sharded).
    schedule_kind:
        ``cyclic`` / ``oblivious`` / ``regimen`` / ``adaptive``.
    makespan / std_err / n_reps / truncated / min / max / samples:
        The makespan estimate.  On the exact route ``std_err`` is 0,
        ``n_reps``/``truncated`` are 0, and ``exact`` is True; on the MC
        route ``truncated`` counts budget-censored replications (the mean
        is then a lower bound, exactly as the legacy estimator reports).
    completion_curve / state_distribution:
        Requested extra metrics (None when not requested).
    sharded / rounds / precision_met:
        MC provenance: whether the sharded backend ran, how many
        adaptive-precision rounds were spent, and whether the precision
        target was met within the budget (None when no target was set).
    reason:
        Human-readable dispatch rationale (why this route was picked).
    wall_time_s:
        End-to-end wall-clock of the evaluation, from request construction
        through dispatch to the engine run.
    telemetry:
        Captured instrumentation (``repro.obs``) when collection was on
        during the call: ``{"span": <evaluate span tree>, "counters":
        {...}}``.  None when telemetry was disabled (the default).
    """

    mode: str
    engine: str
    schedule_kind: str
    makespan: float | None = None
    std_err: float = 0.0
    n_reps: int = 0
    truncated: int = 0
    min: float | None = None
    max: float | None = None
    samples: np.ndarray | None = None
    completion_curve: np.ndarray | None = None
    state_distribution: np.ndarray | None = None
    sharded: bool = False
    rounds: int = 1
    precision_met: bool | None = None
    reason: str = ""
    wall_time_s: float = 0.0
    request: EvaluationRequest | None = None
    telemetry: dict | None = None

    # -- compatibility views ----------------------------------------------
    @property
    def exact(self) -> bool:
        """True when the value is analytic (no sampling error)."""
        return self.mode == "exact"

    @property
    def mean(self) -> float | None:
        """Alias of :attr:`makespan` (the legacy estimate's field name)."""
        return self.makespan

    @property
    def engine_used(self) -> str:
        """Alias of :attr:`engine` (the legacy estimate's field name)."""
        return self.engine

    @property
    def censored(self) -> bool:
        return self.truncated > 0

    @property
    def ci95(self) -> tuple[float, float] | None:
        """Normal-approximation 95% CI; degenerate on the exact route."""
        if self.makespan is None:
            return None
        half = 0.0 if self.exact else 1.96 * self.std_err
        return (self.makespan - half, self.makespan + half)

    # -- rendering --------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict (arrays become lists, the request is inlined)."""
        req = None
        if self.request is not None:
            req = {
                "metrics": list(self.request.metrics),
                "mode": self.request.mode,
                "reps": self.request.reps,
                "seed": _jsonable_seed(self.request.seed),
                "max_steps": self.request.max_steps,
                "horizon": self.request.horizon,
                "rtol": self.request.rtol,
                "target_ci": self.request.target_ci,
                "budget": self.request.budget,
                "engine": self.request.engine,
                "max_states": self.request.max_states,
                "workers": self.request.workers,
                "shards": self.request.shards,
            }
        return {
            "mode": self.mode,
            "engine": self.engine,
            "schedule_kind": self.schedule_kind,
            "exact": self.exact,
            "makespan": self.makespan,
            "std_err": self.std_err,
            "ci95": list(self.ci95) if self.ci95 is not None else None,
            "n_reps": self.n_reps,
            "truncated": self.truncated,
            "min": self.min,
            "max": self.max,
            "completion_curve": (
                self.completion_curve.tolist()
                if self.completion_curve is not None
                else None
            ),
            "state_distribution": (
                self.state_distribution.tolist()
                if self.state_distribution is not None
                else None
            ),
            "sharded": self.sharded,
            "rounds": self.rounds,
            "precision_met": self.precision_met,
            "reason": self.reason,
            "wall_time_s": self.wall_time_s,
            "request": req,
            "telemetry": self.telemetry,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "EvaluationReport":
        """Inverse of :meth:`to_dict` — rebuild a report from the wire dict.

        Round-trip contract (property-tested):
        ``EvaluationReport.from_dict(r.to_dict()).to_dict() == r.to_dict()``.
        Derived keys (``exact``, ``ci95``) are ignored on input and
        recomputed; list-valued metrics come back as float64 arrays;
        ``samples`` never crosses the wire (``to_dict`` drops them), so
        the rebuilt report has ``samples=None``.

        A ``request`` sub-dict serialized from a live-``Generator`` seed
        (``to_dict`` stores its ``repr`` for provenance) is not
        reproducible and raises :class:`~repro.errors.ValidationError`
        rather than resurrecting a request whose seed is a string.
        """
        unknown = set(d) - _DERIVED_KEYS - {
            "mode", "engine", "schedule_kind", "makespan", "std_err",
            "n_reps", "truncated", "min", "max", "completion_curve",
            "state_distribution", "sharded", "rounds", "precision_met",
            "reason", "wall_time_s", "telemetry",
        }
        if unknown:
            raise ValidationError(
                f"EvaluationReport.from_dict: unknown keys {sorted(unknown)}"
            )
        request = None
        req = d.get("request")
        if req is not None:
            seed = req.get("seed")
            if seed is not None and not isinstance(seed, int):
                raise ValidationError(
                    "EvaluationReport.from_dict: the serialized request's "
                    f"seed is {seed!r} (a live generator's repr, kept for "
                    "provenance only) — it cannot be rebuilt into a "
                    "reproducible request"
                )
            request = EvaluationRequest(**req)
        curve = d.get("completion_curve")
        dist = d.get("state_distribution")
        return cls(
            mode=d["mode"],
            engine=d["engine"],
            schedule_kind=d["schedule_kind"],
            makespan=d.get("makespan"),
            std_err=d.get("std_err", 0.0),
            n_reps=d.get("n_reps", 0),
            truncated=d.get("truncated", 0),
            min=d.get("min"),
            max=d.get("max"),
            samples=None,
            completion_curve=(
                np.asarray(curve, dtype=np.float64) if curve is not None else None
            ),
            state_distribution=(
                np.asarray(dist, dtype=np.float64) if dist is not None else None
            ),
            sharded=d.get("sharded", False),
            rounds=d.get("rounds", 1),
            precision_met=d.get("precision_met"),
            reason=d.get("reason", ""),
            wall_time_s=d.get("wall_time_s", 0.0),
            request=request,
            telemetry=d.get("telemetry"),
        )

    @classmethod
    def from_json(cls, payload: str) -> "EvaluationReport":
        return cls.from_dict(json.loads(payload))

    def __repr__(self) -> str:
        if self.makespan is None:
            value = ", ".join(
                name
                for name, v in (
                    ("completion_curve", self.completion_curve),
                    ("state_distribution", self.state_distribution),
                )
                if v is not None
            )
        elif self.exact:
            value = f"E[makespan]={self.makespan:.9f} (exact)"
        else:
            lo, hi = self.ci95
            value = (
                f"E[makespan]={self.makespan:.3f} ci95=({lo:.3f}, {hi:.3f}) "
                f"reps={self.n_reps}"
            )
            if self.truncated:
                value += f" truncated={self.truncated}"
        return (
            f"EvaluationReport({value}, mode={self.mode}, engine={self.engine}, "
            f"schedule={self.schedule_kind})"
        )
